"""Epoch-versioned index lifecycle: compaction, snapshots, tiered maintenance.

Covers the storage-lifecycle refactor end to end:

* ``CgRXuIndex.compact_buckets`` — per-bucket chain compaction must reclaim
  nodes, preserve every entry, leave lookup answers *and* instrumentation
  counters bit-identical between the scalar and vector engines, and patch
  (not invalidate) the cached chain tables;
* representative re-anchoring + BVH refit after deletes, with overlap-area
  escalation to a full BVH rebuild;
* ``snapshot()`` / ``build_from_snapshot()`` — the off-path replacement-build
  primitive behind double-buffered shard rebuilds;
* the serve layer's tiered maintenance policy: compaction below the rebuild
  threshold, double-buffered rebuild swaps with zero unavailability (and the
  rebuild buffer visible in the memory footprint while in flight) versus the
  stop-the-world mode's recorded outage windows;
* the dense-keyset ``hit_miss_lookups`` regression (PR-3 footgun).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from conftest import ground_truth_point
from repro.bench.harness import cgrxu_factory, sorted_array_factory
from repro.core.config import CgRXuConfig
from repro.core.updatable import CgRXuIndex, IndexSnapshot
from repro.serve.maintenance import MaintenancePolicy, MaintenanceWorker
from repro.serve.metrics import MetricsRegistry
from repro.serve.sharded import ServeConfig, ShardedIndex
from repro.workloads.keygen import KeySet, generate_keys
from repro.workloads.lookups import hit_miss_lookups


def _grown_index(engine: str, key_bits: int = 32, seed: int = 9):
    """A cgRXu index with real chain debt (inserts) and shrunken buckets (deletes)."""
    keyset = generate_keys(2048, uniformity=0.5, key_bits=key_bits, seed=seed)
    index = CgRXuIndex(
        keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=key_bits, engine=engine)
    )
    rng = np.random.default_rng(seed + 1)
    inserts = rng.integers(0, (1 << 32) - 1, size=3000, dtype=np.uint64).astype(
        keyset.key_dtype
    )
    deletes = rng.choice(keyset.keys, size=512, replace=False)
    inserts = inserts[~np.isin(inserts, deletes)]
    index.update_batch(
        insert_keys=inserts,
        insert_row_ids=np.arange(2048, 2048 + inserts.shape[0], dtype=np.uint32),
        delete_keys=deletes,
    )
    return index, keyset, inserts, deletes


def _probe(keyset, inserts, deletes):
    return np.concatenate([keyset.keys, inserts, deletes]).astype(keyset.key_dtype)


# ---------------------------------------------------------------- compaction


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_compact_buckets_preserves_answers_and_entries(engine):
    index, keyset, inserts, deletes = _grown_index(engine)
    probe = _probe(keyset, inserts, deletes)
    before = index.point_lookup_batch(probe)
    entries_before = index.export_entries()
    degradation_before = index.degradation_score()

    lengths = index.bucket_chain_lengths()
    hottest = np.argsort(lengths)[::-1][:128]
    index.compact_buckets(hottest)

    after = index.point_lookup_batch(probe)
    assert before.row_ids.tobytes() == after.row_ids.tobytes()
    assert before.match_counts.tobytes() == after.match_counts.tobytes()
    entries_after = index.export_entries()
    assert entries_before[0].tobytes() == entries_after[0].tobytes()
    assert entries_before[1].tobytes() == entries_after[1].tobytes()
    assert len(index) == index._count_entries()
    assert index.degradation_score() < degradation_before
    assert index.lifecycle["nodes_reclaimed"] > 0


def test_compact_buckets_engine_parity_bit_identical():
    """Scalar and vector engines stay bit-identical *through* compaction."""
    indexes = {}
    for engine in ("scalar", "vector"):
        index, keyset, inserts, deletes = _grown_index(engine)
        lengths = index.bucket_chain_lengths()
        index.compact_buckets(np.argsort(lengths)[::-1][:128])
        indexes[engine] = (index, _probe(keyset, inserts, deletes))

    scalar_index, probe = indexes["scalar"]
    vector_index, _ = indexes["vector"]
    scalar = scalar_index.point_lookup_batch(probe)
    vector = vector_index.point_lookup_batch(probe)
    assert scalar.row_ids.tobytes() == vector.row_ids.tobytes()
    assert scalar.match_counts.tobytes() == vector.match_counts.tobytes()
    assert dataclasses.asdict(scalar.stats) == dataclasses.asdict(vector.stats)

    lows = probe[:256]
    highs = (lows.astype(np.uint64) + 500).clip(max=(1 << 32) - 1).astype(lows.dtype)
    scalar_range = scalar_index.range_lookup_batch(lows, highs)
    vector_range = vector_index.range_lookup_batch(lows, highs)
    assert all(
        a.tobytes() == b.tobytes()
        for a, b in zip(scalar_range.row_ids, vector_range.row_ids)
    )
    assert dataclasses.asdict(scalar_range.stats) == dataclasses.asdict(
        vector_range.stats
    )


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_compacted_answers_match_ground_truth(engine):
    index, keyset, inserts, deletes = _grown_index(engine)
    index.compact_buckets(np.arange(index.overflow_bucket + 1))
    keys, rows = index.export_entries()
    probe = _probe(keyset, inserts, deletes)
    result = index.point_lookup_batch(probe)
    expected_agg, expected_counts = ground_truth_point(keys, rows, probe)
    np.testing.assert_array_equal(result.row_ids, expected_agg)
    np.testing.assert_array_equal(result.match_counts, expected_counts)


def test_compaction_patches_chain_cache_per_bucket():
    index, *_ = _grown_index("vector")
    order_before, _ = index._chain_table()  # warm the cache
    lengths = index.bucket_chain_lengths()
    touched = np.argsort(lengths)[::-1][:64]
    index.compact_buckets(touched)
    assert index._chain_cache is not None  # patched, not invalidated
    patched_order, patched_starts = index._chain_cache
    fresh_order, fresh_starts = index.nodes.flatten_chains(index.overflow_bucket + 1)
    np.testing.assert_array_equal(patched_order, fresh_order)
    np.testing.assert_array_equal(patched_starts, fresh_starts)


def test_released_nodes_are_reused_before_fresh_allocations():
    index, keyset, *_ = _grown_index("vector")
    nodes = index.nodes
    index.compact_buckets(np.arange(index.overflow_bucket + 1))
    assert nodes._free_nodes, "full compaction should reclaim at least one node"
    free_before = list(nodes._free_nodes)
    assert nodes.allocate_linked_node() == free_before[-1]
    assert nodes.linked_nodes_used == nodes._linked_used - len(free_before) + 1


# --------------------------------------------------- re-anchoring and the BVH


def test_compaction_reanchors_and_refits_after_deletes():
    index, keyset, inserts, deletes = _grown_index("vector")
    refits_before = index.pipeline.refit_count
    index.compact_buckets(np.arange(index.overflow_bucket + 1))
    assert index.lifecycle["reanchored_representatives"] > 0
    assert index.lifecycle["bvh_refits"] >= 1
    assert index.pipeline.refit_count > refits_before
    # Geometry moved and was refit — answers must still match ground truth.
    keys, rows = index.export_entries()
    probe = _probe(keyset, inserts, deletes)
    result = index.point_lookup_batch(probe)
    expected_agg, expected_counts = ground_truth_point(keys, rows, probe)
    np.testing.assert_array_equal(result.row_ids, expected_agg)
    np.testing.assert_array_equal(result.match_counts, expected_counts)


def test_overlap_escalation_rebuilds_the_bvh():
    index, *_ = _grown_index("vector")
    builds_before = index.pipeline.build_count
    # Shrink the quality baseline so the first refit escalates past the ratio.
    index._built_overlap_area = index._built_overlap_area / 1e6
    index.compact_buckets(np.arange(index.overflow_bucket + 1))
    assert index.lifecycle["bvh_rebuilds"] >= 1
    assert index.pipeline.build_count > builds_before
    # The rebuild reset the baseline: quality is pristine again.
    assert index.bvh_overlap_ratio() == pytest.approx(1.0)


# ----------------------------------------------------- epochs and snapshots


def test_epoch_advances_with_compaction_and_snapshot_builds():
    index, keyset, inserts, deletes = _grown_index("vector")
    assert index.epoch == 0
    index.compact_buckets([0, 1, 2])
    assert index.epoch == 1
    snapshot = index.snapshot()
    assert isinstance(snapshot, IndexSnapshot)
    assert snapshot.epoch == 1
    assert snapshot.num_entries == len(index)

    replacement = CgRXuIndex.build_from_snapshot(snapshot)
    assert replacement.epoch == 2
    assert replacement.degradation_score() == 0.0
    probe = _probe(keyset, inserts, deletes)
    live = index.point_lookup_batch(probe)
    rebuilt = replacement.point_lookup_batch(probe)
    assert live.row_ids.tobytes() == rebuilt.row_ids.tobytes()
    assert live.match_counts.tobytes() == rebuilt.match_counts.tobytes()


def test_snapshot_is_isolated_from_later_updates():
    index, keyset, *_ = _grown_index("vector")
    snapshot = index.snapshot()
    entries = snapshot.num_entries
    index.update_batch(delete_keys=keyset.keys[:64])
    assert snapshot.num_entries == entries  # the copy did not move


# ------------------------------------------------------- serve: tiered policy


def _served_cgrxu(keyset, **knobs) -> ShardedIndex:
    config = ServeConfig(num_shards=4, key_bits=32, cache_capacity=0, **knobs)
    return ShardedIndex(
        keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config
    )


def _degrade(served: ShardedIndex, keyset, waves: int = 3, seed: int = 2) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(waves):
        inserts = rng.integers(0, (1 << 32) - 1, size=1500, dtype=np.uint64).astype(
            np.uint32
        )
        served.update_batch(insert_keys=inserts)


def test_tiered_scan_compacts_before_rebuilding():
    keyset = generate_keys(2048, uniformity=0.5, key_bits=32, seed=21)
    served = _served_cgrxu(
        keyset, compact_threshold=0.05, rebuild_threshold=1e9
    )
    _degrade(served, keyset, waves=1)
    snapshot = served.maintenance.snapshot()
    assert snapshot["compactions_performed"] >= 1
    assert snapshot["rebuilds_performed"] == 0
    assert snapshot.get("maintenance_ms_compact", 0.0) > 0.0


def test_double_buffered_rebuild_has_zero_unavailability():
    keyset = generate_keys(2048, uniformity=0.5, key_bits=32, seed=22)
    served = _served_cgrxu(
        keyset, compact_threshold=0.3, rebuild_threshold=0.3,
        rebuild_mode="double_buffered",
    )
    _degrade(served, keyset)
    snapshot = served.maintenance.snapshot()
    assert snapshot["rebuilds_performed"] >= 1
    assert served.metrics.unavailability_windows == []
    assert served.metrics.availability == 1.0
    # Both generations were resident at the swap point.
    assert snapshot["rebuild_peak_bytes"] > served.memory_footprint().total_bytes


def test_stop_the_world_rebuild_records_outage_windows():
    keyset = generate_keys(2048, uniformity=0.5, key_bits=32, seed=22)
    served = _served_cgrxu(
        keyset, compact_threshold=0.3, rebuild_threshold=0.3,
        rebuild_mode="stop_the_world",
    )
    _degrade(served, keyset)
    snapshot = served.maintenance.snapshot()
    assert snapshot["rebuilds_performed"] >= 1
    assert len(served.metrics.unavailability_windows) >= 1
    assert served.metrics.unavailable_ms > 0.0


def test_rebuild_buffer_appears_in_memory_footprint_until_commit():
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=23)
    served = _served_cgrxu(keyset)
    router = served.router
    resident = served.memory_footprint().total_bytes

    router.begin_shard_rebuild(0)
    during = served.memory_footprint()
    assert during.get("shard_0_rebuild_buffer") > 0
    assert during.total_bytes > resident

    old_index = router.shards[0].index
    router.commit_shard_rebuild(0)
    after = served.memory_footprint()
    assert after.get("shard_0_rebuild_buffer") == 0
    assert router.shards[0].index is not old_index
    assert router.shards[0].pending_index is None
    # The replacement was built through the snapshot lifecycle: next epoch.
    assert router.shards[0].index.epoch == old_index.epoch + 1
    # The swapped-in generation answers exactly like the old one.
    probe = keyset.keys[:256].astype(np.uint32)
    result = served.point_lookup_batch(probe)
    assert (result.match_counts >= 1).all()


def test_commit_after_interleaved_updates_does_not_lose_writes():
    """Updates landing between begin and commit trigger a catch-up rebuild."""
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=27)
    served = _served_cgrxu(keyset, compact_threshold=1e9, rebuild_threshold=1e9)
    router = served.router
    router.begin_shard_rebuild(0)
    # Route fresh keys into shard 0 while its replacement is building.
    shard_keys = router.shards[0].keys
    low, high = int(shard_keys[0]), int(shard_keys[-1])
    rng = np.random.default_rng(4)
    inserts = rng.integers(low, high, size=64, dtype=np.uint64).astype(np.uint32)
    rows = np.arange(100_000, 100_064, dtype=np.uint32)
    served.update_batch(insert_keys=inserts, insert_row_ids=rows)
    router.commit_shard_rebuild(0)
    result = served.point_lookup_batch(inserts)
    assert (result.match_counts >= 1).all()  # no write lost in the swap


def test_abort_rebuild_drops_the_buffer():
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=24)
    served = _served_cgrxu(keyset)
    served.router.begin_shard_rebuild(1)
    with pytest.raises(ValueError):
        served.router.begin_shard_rebuild(1)  # one in flight per shard
    served.router.abort_shard_rebuild(1)
    assert served.memory_footprint().get("shard_1_rebuild_buffer") == 0
    with pytest.raises(ValueError):
        served.router.commit_shard_rebuild(1)


def test_replica_group_compaction_keeps_answers():
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=25)
    served = ShardedIndex(
        keyset.keys,
        keyset.row_ids,
        factory=cgrxu_factory(128),
        config=ServeConfig(
            num_shards=2, key_bits=32, cache_capacity=0, replication_factor=3,
            compact_threshold=1e9, rebuild_threshold=1e9,
        ),
    )
    rng = np.random.default_rng(3)
    inserts = rng.integers(0, (1 << 32) - 1, size=2048, dtype=np.uint64).astype(np.uint32)
    served.update_batch(insert_keys=inserts)
    probe = np.concatenate([keyset.keys, inserts]).astype(np.uint32)
    before = served.point_lookup_batch(probe)
    compacted = [served.router.compact_shard(shard_id) for shard_id in range(2)]
    assert any(work is not None for work in compacted)
    after = served.point_lookup_batch(probe)
    assert before.row_ids.tobytes() == after.row_ids.tobytes()
    assert before.match_counts.tobytes() == after.match_counts.tobytes()


def test_sorted_array_shards_skip_compaction():
    keyset = generate_keys(512, uniformity=0.5, key_bits=32, seed=26)
    served = ShardedIndex(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        config=ServeConfig(num_shards=2, key_bits=32, cache_capacity=0),
    )
    assert served.router.compact_shard(0) is None


def test_rebuilding_an_emptied_shard_does_not_crash():
    """A shard whose every key was deleted rebuilds to 'no index', not a crash."""
    keyset = generate_keys(512, uniformity=0.0, key_bits=32, seed=31)
    served = _served_cgrxu(keyset, compact_threshold=1e9, rebuild_threshold=1e9)
    router = served.router
    shard0_keys = router.shards[0].keys.copy()
    served.update_batch(delete_keys=shard0_keys)
    assert router.shards[0].num_entries == 0
    router.rebuild_shard(0)  # double-buffered; must not raise
    assert router.shards[0].index is None
    result = served.point_lookup_batch(shard0_keys[:16].astype(np.uint32))
    assert (result.match_counts == 0).all()


def test_replicated_two_phase_rebuild_preserves_the_group():
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=28)
    served = ShardedIndex(
        keyset.keys,
        keyset.row_ids,
        factory=cgrxu_factory(128),
        config=ServeConfig(
            num_shards=2, key_bits=32, cache_capacity=0, replication_factor=3,
        ),
    )
    router = served.router
    group = router.shards[0].index
    router.begin_shard_rebuild(0)
    assert router.shards[0].pending_index is None  # rolling: nothing buffered
    router.commit_shard_rebuild(0)
    assert router.shards[0].index is group  # same group, reloaded in place
    assert len(group.replicas) == 3
    probe = keyset.keys[:128].astype(np.uint32)
    assert (served.point_lookup_batch(probe).match_counts >= 1).all()


def test_foreground_update_supersedes_inflight_rebuild():
    """Rebuild-fallback updates must not raise into the foreground path."""
    keyset = generate_keys(512, uniformity=0.5, key_bits=32, seed=29)
    served = ShardedIndex(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),  # no native updates: rebuild fallback
        config=ServeConfig(num_shards=2, key_bits=32, cache_capacity=0),
    )
    served.router.begin_shard_rebuild(0)
    inserts = np.asarray([1, 2, 3], dtype=np.uint32)
    served.update_batch(insert_keys=inserts)  # must not raise
    assert not served.router.shards[0].pending_rebuild
    assert (served.point_lookup_batch(inserts).match_counts >= 1).all()


def test_maintenance_metrics_rebind_after_caller_registry_stream():
    """Maintenance telemetry must return to the deployment registry after a
    stream served into a caller-provided one (unreplicated deployments too)."""
    from repro.workloads.requests import zipf_request_stream

    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=30)
    served = _served_cgrxu(
        keyset, compact_threshold=0.1, rebuild_threshold=0.3,
        rebuild_mode="stop_the_world",
    )
    caller_registry = MetricsRegistry(num_shards=4)
    served.serve_stream(
        zipf_request_stream(keyset, 64, seed=1), metrics=caller_registry
    )
    _degrade(served, keyset)  # triggers stop-the-world rebuilds post-stream
    assert served.metrics.maintenance_windows  # landed on the deployment's own
    assert served.metrics.unavailability_windows
    assert not caller_registry.maintenance_windows


# -------------------------------------------------------- maintenance metrics


def test_maintenance_windows_and_tail_latency_reduction():
    metrics = MetricsRegistry(num_shards=1)
    for arrival, latency in ((0.0, 1.0), (5.0, 9.0), (6.0, 11.0), (20.0, 2.0)):
        metrics.record_request(latency, arrival, arrival + latency)
    metrics.record_maintenance("compact", 4.0, 7.0)
    assert metrics.maintenance_device_ms["compact"] == pytest.approx(3.0)
    # Only the two requests arriving inside [4, 7] count.
    assert metrics.latency_during_maintenance(50.0) == pytest.approx(10.0)
    snapshot = metrics.snapshot()
    assert snapshot["maintenance_windows"] == 1
    assert snapshot["maintenance_ms_compact"] == pytest.approx(3.0)
    assert "latency_p99_during_maintenance_ms" in snapshot


def test_maintenance_policy_validates_rebuild_mode():
    with pytest.raises(ValueError):
        MaintenancePolicy(rebuild_mode="in_place")


# ------------------------------------------------------- the bench experiment


def test_lifecycle_experiment_acceptance():
    """Pin the acceptance criteria of ``repro-bench lifecycle``:

    zero unavailability windows for double-buffered rebuilds, nonzero for
    the stop-the-world path, and every row oracle-checked byte-identical.
    """
    from repro.bench.experiments import lifecycle

    result = lifecycle(quick=True)
    assert result.rows
    assert all(row["oracle_identical"] for row in result.rows)
    by_policy = {}
    for row in result.rows:
        by_policy.setdefault(row["policy"], []).append(row)
    double_buffered = by_policy["rebuild_double_buffered"][-1]
    stop_world = by_policy["rebuild_stop_world"][-1]
    assert double_buffered["rebuilds"] >= 1
    assert double_buffered["unavailability_windows"] == 0
    assert double_buffered["availability"] == 1.0
    assert stop_world["rebuilds"] >= 1
    assert stop_world["unavailability_windows"] >= 1
    assert stop_world["unavailable_ms"] > 0.0
    # Double-buffering trades peak memory for availability.
    assert double_buffered["rebuild_peak_mib"] > stop_world["footprint_mib"]
    # The compaction tier actually compacts; the unmaintained run degrades.
    assert by_policy["compact"][-1]["compactions"] >= 1
    assert by_policy["none"][-1]["degradation"] > by_policy["compact"][-1]["degradation"]


# ------------------------------------------------- hit_miss_lookups regression


def test_hit_miss_lookups_dense_keyset_falls_back_to_out_of_range():
    """PR-3 footgun: in-range misses on a fully dense key set used to hang."""
    keys = np.arange(512, dtype=np.uint32)
    keyset = KeySet(
        keys=keys, row_ids=np.arange(512, dtype=np.uint32), key_bits=32,
        description="dense",
    )
    lookups = hit_miss_lookups(keyset, 64, miss_fraction=1.0, seed=1)
    assert lookups.shape[0] == 64
    assert (lookups > keys[-1]).all()  # every miss generated out of range


def test_hit_miss_lookups_near_dense_keyset_samples_gaps_directly():
    """Near-dense key sets (a handful of gaps) must not spin the sampler."""
    values = np.arange(1 << 16, dtype=np.uint32)
    removed = np.array([5, 4097, 60_000], dtype=np.uint32)
    keys = np.setdiff1d(values, removed)
    keyset = KeySet(
        keys=keys, row_ids=np.arange(keys.shape[0], dtype=np.uint32), key_bits=32,
        description="near-dense",
    )
    lookups = hit_miss_lookups(keyset, 32, miss_fraction=1.0, seed=3)
    assert lookups.shape[0] == 32
    assert np.isin(lookups, removed).all()  # only the three gaps exist


def test_hit_miss_lookups_gappy_keyset_still_samples_in_range():
    keys = np.arange(0, 1024, 2, dtype=np.uint32)  # every other value missing
    keyset = KeySet(
        keys=keys, row_ids=np.arange(keys.shape[0], dtype=np.uint32), key_bits=32,
        description="gappy",
    )
    lookups = hit_miss_lookups(keyset, 64, miss_fraction=1.0, seed=2)
    assert lookups.shape[0] == 64
    assert not np.isin(lookups, keys).any()
    assert (lookups < keys[-1]).any()  # at least some misses are in range
