"""Contract tests for the six baselines (and served deployments) through `GpuIndex`.

Every index type is driven through the shared interface only: batched point
lookups (hits and misses), batched range lookups, batched updates and the
memory footprint.  Results are compared against numpy ground truth, so these
tests pin the *semantics* the bench harness relies on — the cost model is
covered elsewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ground_truth_point, ground_truth_range
from repro.baselines.base import GpuIndex, UnsupportedOperation
from repro.bench.harness import (
    btree_factory,
    cgrx_factory,
    cgrxu_factory,
    fullscan_factory,
    hash_table_factory,
    rtscan_factory,
    rx_factory,
    sharded_factory,
    sorted_array_factory,
)
from repro.workloads.keygen import generate_keys
from repro.workloads.lookups import hit_miss_lookups, range_lookups, uniform_lookups

#: Every index type under contract: the six baselines plus two served
#: deployments (range- and hash-partitioned) that must behave identically.
CONTRACT_FACTORIES = {
    "fullscan": fullscan_factory(),
    "sorted_array": sorted_array_factory(),
    "btree": btree_factory(),
    "hash_table": hash_table_factory(),
    "rtscan": rtscan_factory(),
    # Engine-parametrized index types: the same contract must hold for the
    # vector (default) and the scalar reference execution engine.
    "rx[vector]": rx_factory(),
    "rx[scalar]": rx_factory(engine="scalar"),
    "cgrxu[vector]": cgrxu_factory(128),
    "cgrxu[scalar]": cgrxu_factory(128, engine="scalar"),
    "sharded_range_sa": sharded_factory(
        inner=sorted_array_factory(), num_shards=4, partitioner="range", cache_capacity=128
    ),
    "sharded_hash_cgrx[vector]": sharded_factory(
        inner=cgrx_factory(32), num_shards=3, partitioner="hash", cache_capacity=0
    ),
    "sharded_hash_cgrx[scalar]": sharded_factory(
        inner=cgrx_factory(32, engine="scalar"),
        num_shards=3,
        partitioner="hash",
        cache_capacity=0,
        engine="scalar",
    ),
}

FACTORY_IDS = sorted(CONTRACT_FACTORIES)


@pytest.fixture(scope="module")
def keyset():
    """One 32-bit key set every index type can be built from."""
    return generate_keys(num_keys=1024, uniformity=0.5, key_bits=32, seed=5)


def build(name, keyset) -> GpuIndex:
    return CONTRACT_FACTORIES[name](keyset)


# --------------------------------------------------------------------------
# Point lookups
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_point_lookup_hits(name, keyset):
    index = build(name, keyset)
    lookups = uniform_lookups(keyset, 256, seed=17)
    if not type(index).supports_point:
        with pytest.raises(UnsupportedOperation):
            index.point_lookup_batch(lookups)
        return
    result = index.point_lookup_batch(lookups)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    assert result.num_lookups == 256
    np.testing.assert_array_equal(result.match_counts, counts)
    np.testing.assert_array_equal(result.row_ids, agg)
    assert result.hits == 256
    assert result.stats.total_bytes > 0


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_point_lookup_misses(name, keyset):
    index = build(name, keyset)
    if not type(index).supports_point:
        pytest.skip("point lookups unsupported (covered by test_point_lookup_hits)")
    lookups = hit_miss_lookups(keyset, 256, miss_fraction=0.5, seed=19)
    result = index.point_lookup_batch(lookups)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    np.testing.assert_array_equal(result.match_counts, counts)
    np.testing.assert_array_equal(result.row_ids, agg)
    missed = result.num_lookups - result.hits
    assert missed == int((counts == 0).sum()) > 0


# --------------------------------------------------------------------------
# Range lookups
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_range_lookup(name, keyset):
    index = build(name, keyset)
    lows, highs = range_lookups(keyset, count=32, expected_hits=8, seed=23)
    if not type(index).supports_range:
        with pytest.raises(UnsupportedOperation):
            index.range_lookup_batch(lows, highs)
        return
    result = index.range_lookup_batch(lows, highs)
    assert result.num_lookups == 32
    for position in range(32):
        expected = ground_truth_range(
            keyset.keys, keyset.row_ids, lows[position], highs[position]
        )
        got = result.row_ids[position]
        assert got.shape[0] == expected.shape[0]
        np.testing.assert_array_equal(np.sort(got), np.sort(expected))


# --------------------------------------------------------------------------
# Updates
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_update_insert_then_lookup(name, keyset):
    index = build(name, keyset)
    # Brand-new keys beyond the generated range cannot collide with the set.
    new_keys = np.asarray([1 << 30, (1 << 30) + 7, (1 << 30) + 19], dtype=np.uint32)
    new_rows = np.asarray([11, 22, 33], dtype=np.uint32)
    try:
        update = index.update_batch(insert_keys=new_keys, insert_row_ids=new_rows)
    except UnsupportedOperation:
        assert not type(index).supports_updates
        return
    assert update.inserted == 3
    result = index.point_lookup_batch(new_keys)
    np.testing.assert_array_equal(result.match_counts, [1, 1, 1])
    np.testing.assert_array_equal(result.row_ids, [11, 22, 33])


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_update_delete_then_miss(name, keyset):
    index = build(name, keyset)
    victims = np.unique(keyset.keys)[:4]
    try:
        update = index.update_batch(delete_keys=victims)
    except UnsupportedOperation:
        assert not type(index).supports_updates
        return
    assert update.deleted == 4
    result = index.point_lookup_batch(victims)
    np.testing.assert_array_equal(result.match_counts, np.zeros(4, dtype=np.int64))
    np.testing.assert_array_equal(result.row_ids, np.full(4, -1, dtype=np.int64))


def test_declared_update_support_is_honest(keyset):
    """Index types claiming update support must not raise UnsupportedOperation."""
    for name in FACTORY_IDS:
        index = build(name, keyset)
        if not type(index).supports_updates:
            continue
        update = index.update_batch(
            insert_keys=np.asarray([123456789], dtype=np.uint32),
            insert_row_ids=np.asarray([1], dtype=np.uint32),
        )
        assert update.inserted == 1, name


# --------------------------------------------------------------------------
# Memory and metadata
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_memory_footprint_and_build(name, keyset):
    index = build(name, keyset)
    footprint = index.memory_footprint()
    assert footprint.total_bytes > 0
    assert index.build_time_ms >= 0.0
    if type(index).supports_point:
        result = index.point_lookup_batch(keyset.keys[:16])
    else:
        result = index.range_lookup_batch(keyset.keys[:16], keyset.keys[:16])
    assert index.lookup_time_ms(result) > 0.0


@pytest.mark.parametrize("name", FACTORY_IDS)
def test_feature_row_shape(name, keyset):
    index = build(name, keyset)
    row = type(index).feature_row()
    assert set(row) == {"index", "point", "range", "memory", "64bit", "bulk_load", "updates"}
    assert row["memory"] in ("low", "med", "high")
