"""Unit and property tests for the geometric primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtx.geometry import (
    TRIANGLE_BYTES,
    TRIANGLE_HALF_EXTENT,
    Aabb,
    HitRecord,
    Ray,
    Triangle,
    make_key_triangle,
    ray_aabb_intersect,
    ray_aabbs_intersect,
    ray_triangle_intersect,
    ray_triangles_intersect,
)


class TestAabb:
    def test_from_points_bounds_all_points(self):
        points = np.array([[0.0, 1.0, 2.0], [3.0, -1.0, 0.5], [1.0, 0.0, 4.0]])
        box = Aabb.from_points(points)
        assert np.all(box.minimum == [0.0, -1.0, 0.5])
        assert np.all(box.maximum == [3.0, 1.0, 4.0])

    def test_empty_box_is_identity_for_union(self):
        box = Aabb.from_points(np.array([[1.0, 2.0, 3.0]]))
        merged = Aabb.empty().union(box)
        assert np.allclose(merged.minimum, box.minimum)
        assert np.allclose(merged.maximum, box.maximum)

    def test_empty_box_reports_empty(self):
        assert Aabb.empty().is_empty()
        assert not Aabb.from_points(np.zeros((1, 3))).is_empty()

    def test_union_contains_both_operands(self):
        a = Aabb.from_points(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        b = Aabb.from_points(np.array([[2.0, -1.0, 0.0], [3.0, 0.5, 2.0]]))
        union = a.union(b)
        assert union.contains_point([0.0, 0.0, 0.0])
        assert union.contains_point([3.0, 0.5, 2.0])

    def test_grow_to_contain(self):
        box = Aabb.from_points(np.array([[0.0, 0.0, 0.0]]))
        grown = box.grow_to_contain([5.0, -2.0, 1.0])
        assert grown.contains_point([5.0, -2.0, 1.0])
        assert grown.contains_point([0.0, 0.0, 0.0])

    def test_contains_point_boundary(self):
        box = Aabb.from_points(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        assert box.contains_point([1.0, 1.0, 1.0])
        assert not box.contains_point([1.0001, 1.0, 1.0])

    def test_overlaps(self):
        a = Aabb.from_points(np.array([[0.0, 0.0, 0.0], [2.0, 2.0, 2.0]]))
        b = Aabb.from_points(np.array([[1.0, 1.0, 1.0], [3.0, 3.0, 3.0]]))
        c = Aabb.from_points(np.array([[5.0, 5.0, 5.0], [6.0, 6.0, 6.0]]))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_surface_area_of_unit_cube(self):
        box = Aabb.from_points(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        assert box.surface_area() == pytest.approx(6.0)

    def test_surface_area_of_empty_box_is_zero(self):
        assert Aabb.empty().surface_area() == 0.0

    def test_centre_and_extent(self):
        box = Aabb.from_points(np.array([[0.0, 2.0, 4.0], [2.0, 6.0, 8.0]]))
        assert np.allclose(box.centre, [1.0, 4.0, 6.0])
        assert np.allclose(box.extent, [2.0, 4.0, 4.0])


class TestTriangle:
    def test_key_triangle_is_centred_on_grid_point(self):
        triangle = make_key_triangle(5.0, 3.0, 1.0)
        assert np.allclose(triangle.centroid(), [5.0, 3.0, 1.0], atol=1e-5)

    def test_key_triangle_fits_within_grid_cell(self):
        triangle = make_key_triangle(5.0, 3.0, 1.0)
        box = triangle.aabb()
        assert np.all(box.extent <= 2 * TRIANGLE_HALF_EXTENT + 1e-6)

    def test_flipped_triangle_has_opposite_normal(self):
        triangle = make_key_triangle(0.0, 0.0, 0.0)
        flipped = triangle.flipped()
        assert np.allclose(triangle.geometric_normal(), -flipped.geometric_normal())

    def test_make_key_triangle_flip_parameter(self):
        regular = make_key_triangle(1.0, 2.0, 3.0, flipped=False)
        flipped = make_key_triangle(1.0, 2.0, 3.0, flipped=True)
        assert np.dot(regular.geometric_normal(), flipped.geometric_normal()) < 0

    def test_primitive_index_is_preserved(self):
        triangle = make_key_triangle(0.0, 0.0, 0.0, primitive_index=17)
        assert triangle.primitive_index == 17
        assert triangle.flipped().primitive_index == 17

    def test_triangle_bytes_constant_matches_paper(self):
        # Nine 4-byte floats per triangle: the 36 B/key overhead of RX.
        assert TRIANGLE_BYTES == 36

    def test_vertices_shape(self):
        triangle = make_key_triangle(0.0, 0.0, 0.0)
        assert triangle.vertices().shape == (3, 3)


class TestRayTriangleIntersection:
    def test_axis_ray_hits_key_triangle(self):
        triangle = make_key_triangle(5.0, 0.0, 0.0)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        hit, t, front = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert hit
        assert t == pytest.approx(5.0, abs=0.2)

    def test_unflipped_triangle_reports_front_face_for_positive_axis_rays(self):
        triangle = make_key_triangle(5.0, 0.0, 0.0)
        for direction in ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]):
            origin = np.array([5.0, 0.0, 0.0]) - np.array(direction) * 3.0
            hit, _, front = ray_triangle_intersect(
                Ray(origin=origin, direction=direction), triangle.v0, triangle.v1, triangle.v2
            )
            assert hit
            assert front

    def test_flipped_triangle_reports_back_face(self):
        triangle = make_key_triangle(5.0, 0.0, 0.0, flipped=True)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        hit, _, front = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert hit
        assert not front

    def test_ray_misses_triangle_in_other_row(self):
        triangle = make_key_triangle(5.0, 1.0, 0.0)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        hit, _, _ = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert not hit

    def test_tmax_limits_the_ray(self):
        triangle = make_key_triangle(5.0, 0.0, 0.0)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0], tmax=2.0)
        hit, _, _ = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert not hit

    def test_tmin_skips_near_triangles(self):
        triangle = make_key_triangle(1.0, 0.0, 0.0)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0], tmin=3.0)
        hit, _, _ = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert not hit

    def test_backward_ray_does_not_hit(self):
        triangle = make_key_triangle(5.0, 0.0, 0.0)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[-1.0, 0.0, 0.0])
        hit, _, _ = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
        assert not hit

    def test_vectorised_intersection_matches_scalar(self, rng):
        triangles = [
            make_key_triangle(float(x), float(y), 0.0, flipped=bool(f))
            for x, y, f in zip(
                rng.integers(0, 20, size=32), rng.integers(0, 4, size=32), rng.integers(0, 2, size=32)
            )
        ]
        vertices = np.stack([t.vertices() for t in triangles])
        ray = Ray(origin=[-0.5, 2.0, 0.0], direction=[1.0, 0.0, 0.0])
        mask, ts, fronts = ray_triangles_intersect(ray, vertices)
        for position, triangle in enumerate(triangles):
            hit, t, front = ray_triangle_intersect(ray, triangle.v0, triangle.v1, triangle.v2)
            assert hit == bool(mask[position])
            if hit:
                assert t == pytest.approx(float(ts[position]), rel=1e-4)
                assert front == bool(fronts[position])

    def test_vectorised_intersection_empty_input(self):
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        mask, ts, fronts = ray_triangles_intersect(ray, np.zeros((0, 3, 3)))
        assert mask.shape == (0,)
        assert ts.shape == (0,)

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=100),
        y=st.integers(min_value=0, max_value=20),
        z=st.integers(min_value=0, max_value=20),
        axis=st.integers(min_value=0, max_value=2),
    )
    def test_axis_ray_through_grid_point_always_hits(self, x, y, z, axis):
        """A ray fired along any axis through a triangle's grid point hits it."""
        triangle = make_key_triangle(float(x), float(y), float(z))
        origin = np.array([float(x), float(y), float(z)])
        direction = np.zeros(3)
        direction[axis] = 1.0
        origin[axis] -= 1.0
        hit, t, _ = ray_triangle_intersect(
            Ray(origin=origin, direction=direction), triangle.v0, triangle.v1, triangle.v2
        )
        assert hit
        assert 0.0 <= t <= 2.0


class TestRayAabbIntersection:
    def test_ray_hits_box_ahead(self):
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        assert ray_aabb_intersect(ray, np.array([2.0, -1.0, -1.0]), np.array([3.0, 1.0, 1.0]))

    def test_ray_misses_box_behind(self):
        ray = Ray(origin=[5.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        assert not ray_aabb_intersect(ray, np.array([2.0, -1.0, -1.0]), np.array([3.0, 1.0, 1.0]))

    def test_ray_misses_offset_box(self):
        ray = Ray(origin=[0.0, 5.0, 0.0], direction=[1.0, 0.0, 0.0])
        assert not ray_aabb_intersect(ray, np.array([2.0, -1.0, -1.0]), np.array([3.0, 1.0, 1.0]))

    def test_ray_starting_inside_box_hits(self):
        ray = Ray(origin=[2.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0])
        assert ray_aabb_intersect(ray, np.array([2.0, -1.0, -1.0]), np.array([3.0, 1.0, 1.0]))

    def test_tmax_limits_box_intersection(self):
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.0, 0.0], tmax=1.0)
        assert not ray_aabb_intersect(ray, np.array([2.0, -1.0, -1.0]), np.array([3.0, 1.0, 1.0]))

    def test_vectorised_aabb_test_matches_scalar(self, rng):
        minima = rng.uniform(-10, 10, size=(64, 3)).astype(np.float32)
        maxima = minima + rng.uniform(0.1, 5.0, size=(64, 3)).astype(np.float32)
        ray = Ray(origin=[0.0, 0.0, 0.0], direction=[1.0, 0.2, 0.0])
        mask = ray_aabbs_intersect(ray, minima, maxima)
        for index in range(64):
            assert bool(mask[index]) == ray_aabb_intersect(ray, minima[index], maxima[index])


class TestHitRecord:
    def test_miss_is_falsy(self):
        assert not HitRecord()

    def test_hit_is_truthy_and_exposes_point(self):
        record = HitRecord(hit=True, t=1.0, primitive_index=3, point=np.array([1.0, 2.0, 3.0]))
        assert record
        assert record.x == 1.0
        assert record.y == 2.0
        assert record.z == 3.0

    def test_miss_point_coordinates_are_nan(self):
        record = HitRecord()
        assert np.isnan(record.x)
