"""Tests for the serving subsystem: partitioning, batching, caching, maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ground_truth_point, ground_truth_range
from repro.bench.experiments import serving_deployment
from repro.bench.harness import cgrxu_factory, sorted_array_factory
from repro.serve import (
    BatchPolicy,
    BatchScheduler,
    HashPartitioner,
    MaintenancePolicy,
    MaintenanceWorker,
    RangePartitioner,
    ResultCache,
    ServeConfig,
    ShardRouter,
    ShardedIndex,
    make_partitioner,
    queueable,
    shard_skew,
)
from repro.serve.maintenance import QUEUEABLE_TASKS
from repro.workloads.keygen import generate_keys
from repro.workloads.lookups import uniform_lookups
from repro.workloads.requests import zipf_request_stream


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=31)


# --------------------------------------------------------------------------
# Partitioning
# --------------------------------------------------------------------------


def test_range_partitioner_is_balanced_and_total(keyset):
    partitioner = RangePartitioner(keyset.keys, num_shards=4)
    shard_of = partitioner.shard_of(keyset.keys)
    assert shard_of.min() == 0 and shard_of.max() == 3
    counts = np.bincount(shard_of, minlength=4)
    # Equi-depth boundaries: every shard within one of a quarter of the keys.
    assert counts.max() - counts.min() <= 2
    # Order-preserving: larger keys never land on smaller shards.
    order = np.argsort(keyset.keys)
    assert np.all(np.diff(shard_of[order]) >= 0)


def test_range_partitioner_narrow_range_scatter(keyset):
    partitioner = RangePartitioner(keyset.keys, num_shards=8)
    sorted_keys = np.sort(keyset.keys)
    low, high = int(sorted_keys[10]), int(sorted_keys[40])
    shards = partitioner.shards_for_range(low, high)
    # 31 consecutive keys cannot span more than a fraction of 8 equi-depth shards.
    assert 1 <= shards.shape[0] <= 2
    # Consistency: every key inside the range routes to a listed shard.
    inside = keyset.keys[(keyset.keys >= low) & (keyset.keys <= high)]
    assert np.isin(partitioner.shard_of(inside), shards).all()


def test_hash_partitioner_spreads_and_scatters_everywhere(keyset):
    partitioner = HashPartitioner(num_shards=5)
    shard_of = partitioner.shard_of(keyset.keys)
    counts = np.bincount(shard_of, minlength=5)
    assert counts.min() > 0
    assert shard_skew(counts) < 1.25
    np.testing.assert_array_equal(
        partitioner.shards_for_range(0, 10), np.arange(5)
    )


def test_make_partitioner_rejects_unknown(keyset):
    with pytest.raises(ValueError):
        make_partitioner("consistent-hashing", keyset.keys, 4)


# --------------------------------------------------------------------------
# Shard router
# --------------------------------------------------------------------------


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_router_scatter_gather_matches_ground_truth(keyset, partitioner):
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner=partitioner,
        key_bits=32,
    )
    assert int(router.shard_sizes().sum()) == len(keyset)
    lookups = uniform_lookups(keyset, 128, seed=3)
    result = router.point_lookup_batch(lookups)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    np.testing.assert_array_equal(result.row_ids, agg)
    np.testing.assert_array_equal(result.match_counts, counts)
    # The scatter actually fanned out: more than one shard answered.
    assert len(router.last_calls) > 1


def test_router_range_touches_only_overlapping_shards(keyset):
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=8,
        partitioner="range",
        key_bits=32,
    )
    sorted_keys = np.sort(keyset.keys)
    lows = sorted_keys[[5, 100]]
    highs = sorted_keys[[25, 140]]
    result = router.range_lookup_batch(lows, highs)
    for position in range(2):
        expected = ground_truth_range(
            keyset.keys, keyset.row_ids, lows[position], highs[position]
        )
        np.testing.assert_array_equal(
            np.sort(result.row_ids[position]), np.sort(expected)
        )
    # Narrow ranges on a range partitioner must not scatter to all 8 shards.
    assert len(router.last_calls) < 8


def test_router_update_rebuilds_non_updatable_shards(keyset):
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),  # SA cannot update in place
        num_shards=2,
        partitioner="range",
        key_bits=32,
    )
    builds_before = [shard.builds for shard in router.shards]
    new_key = np.asarray([1 << 30], dtype=np.uint32)
    update = router.update_batch(insert_keys=new_key, insert_row_ids=np.asarray([77], dtype=np.uint32))
    assert update.inserted == 1 and update.rebuilt
    # Only the shard owning the key was rebuilt.
    rebuilt = [
        shard.builds - before for shard, before in zip(router.shards, builds_before)
    ]
    assert sorted(rebuilt) == [0, 1]
    result = router.point_lookup_batch(new_key)
    np.testing.assert_array_equal(result.row_ids, [77])


def test_router_unsorted_insert_batch_keeps_authoritative_order(keyset):
    """Regression: same-gap inserts in arbitrary order must stay sorted."""
    router = ShardRouter(
        np.asarray([10, 20, 30, 40], dtype=np.uint32),
        np.asarray([0, 1, 2, 3], dtype=np.uint32),
        factory=sorted_array_factory(),
        num_shards=1,
        partitioner="range",
        key_bits=32,
    )
    router.update_batch(
        insert_keys=np.asarray([25, 22], dtype=np.uint32),
        insert_row_ids=np.asarray([7, 8], dtype=np.uint32),
    )
    assert np.all(np.diff(router.shards[0].keys.astype(np.int64)) >= 0)
    update = router.update_batch(delete_keys=np.asarray([22], dtype=np.uint32))
    assert update.deleted == 1
    result = router.point_lookup_batch(np.asarray([22, 25], dtype=np.uint32))
    np.testing.assert_array_equal(result.match_counts, [0, 1])
    np.testing.assert_array_equal(result.row_ids, [-1, 7])


# --------------------------------------------------------------------------
# Range-lookup boundary contracts (vs a single-instance index)
# --------------------------------------------------------------------------


def single_instance(keyset):
    from repro.baselines.sorted_array import SortedArrayIndex

    return SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)


def assert_ranges_match_single_instance(router, keyset, lows, highs):
    reference = single_instance(keyset)
    lows = np.asarray(lows, dtype=np.uint32)
    highs = np.asarray(highs, dtype=np.uint32)
    routed = router.range_lookup_batch(lows, highs)
    expected = reference.range_lookup_batch(lows, highs)
    assert routed.num_lookups == expected.num_lookups == lows.shape[0]
    for position in range(lows.shape[0]):
        np.testing.assert_array_equal(
            np.sort(routed.row_ids[position]),
            np.sort(expected.row_ids[position]),
            err_msg=f"range {position} [{lows[position]}, {highs[position]}] diverged",
        )


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_range_lookup_spanning_partition_boundaries(keyset, partitioner):
    """Ranges that straddle shard boundaries must gather the full answer."""
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner=partitioner,
        key_bits=32,
    )
    if partitioner == "range":
        boundaries = router.partitioner.boundaries.astype(np.uint64)
    else:  # hash has no key boundaries; use the range partitioner's anyway
        boundaries = RangePartitioner(keyset.keys, 4).boundaries.astype(np.uint64)
    lows, highs = [], []
    for boundary in boundaries:
        # Straddling, exactly-at, ending-at and starting-at the boundary.
        lows += [boundary - 100, boundary, boundary - 100, boundary]
        highs += [boundary + 100, boundary, boundary, boundary + 100]
    assert_ranges_match_single_instance(router, keyset, lows, highs)


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_range_lookup_empty_ranges(keyset, partitioner):
    """Inverted bounds and key-free gaps return empty results, not errors."""
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner=partitioner,
        key_bits=32,
    )
    sorted_keys = np.sort(keyset.keys)
    gaps = np.where(np.diff(sorted_keys.astype(np.int64)) > 2)[0]
    assert gaps.size, "fixture key set should contain gaps"
    gap_low = int(sorted_keys[gaps[0]]) + 1
    gap_high = int(sorted_keys[gaps[0] + 1]) - 1
    lows = [int(sorted_keys[100]), gap_low, 5]
    highs = [int(sorted_keys[10]), gap_high, 5]  # first one is inverted
    assert_ranges_match_single_instance(router, keyset, lows, highs)
    result = router.range_lookup_batch(
        np.asarray(lows, dtype=np.uint32), np.asarray(highs, dtype=np.uint32)
    )
    assert result.row_ids[0].shape[0] == 0
    assert result.row_ids[1].shape[0] == 0


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_range_lookup_full_keyspace(keyset, partitioner):
    """[0, uint32 max] retrieves every entry exactly once."""
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=8,
        partitioner=partitioner,
        key_bits=32,
    )
    full_low, full_high = 0, int(np.iinfo(np.uint32).max)
    assert_ranges_match_single_instance(router, keyset, [full_low], [full_high])
    result = router.range_lookup_batch(
        np.asarray([full_low], dtype=np.uint32), np.asarray([full_high], dtype=np.uint32)
    )
    assert result.row_ids[0].shape[0] == len(keyset)
    np.testing.assert_array_equal(np.sort(result.row_ids[0]), np.sort(keyset.row_ids))
    # Every shard participated in the full-keyspace scatter.
    assert len(router.last_calls) == router.num_shards


def test_range_lookup_batch_mixes_boundary_cases(keyset):
    """One batch mixing all boundary flavours stays in request order."""
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner="range",
        key_bits=32,
    )
    boundary = int(router.partitioner.boundaries[1])
    lows = [0, boundary, 500, int(np.iinfo(np.uint32).max)]
    highs = [int(np.iinfo(np.uint32).max), boundary - 1, 100, int(np.iinfo(np.uint32).max)]
    assert_ranges_match_single_instance(router, keyset, lows, highs)


# --------------------------------------------------------------------------
# Batch scheduler
# --------------------------------------------------------------------------


def test_scheduler_dispatches_full_batches_immediately():
    scheduler = BatchScheduler(BatchPolicy(max_batch_size=4, max_wait_ms=10.0))
    batches = []
    for request_id in range(9):
        batches += scheduler.offer(0, request_id, key=request_id, arrival_ms=0.1 * request_id)
    assert [batch.size for batch in batches] == [4, 4]
    assert all(batch.reason == "full" for batch in batches)
    assert scheduler.pending(0) == 1
    drained = scheduler.drain(now_ms=5.0)
    assert len(drained) == 1 and drained[0].size == 1 and drained[0].reason == "drain"


def test_scheduler_timeout_is_stamped_at_the_deadline():
    scheduler = BatchScheduler(BatchPolicy(max_batch_size=100, max_wait_ms=1.0))
    scheduler.offer(0, 0, key=7, arrival_ms=0.0)
    # Nothing due yet at 0.5 ms.
    assert scheduler.offer(0, 1, key=8, arrival_ms=0.5) == []
    # The next arrival is far beyond the deadline: the batch is dispatched
    # and stamped at deadline 1.0, not at the arrival that surfaced it.
    due = scheduler.offer(1, 2, key=9, arrival_ms=50.0)
    assert len(due) == 1
    batch = due[0]
    assert batch.reason == "timeout"
    assert batch.dispatch_ms == pytest.approx(1.0)
    np.testing.assert_allclose(batch.queue_delays_ms(), [1.0, 0.5])


def test_scheduler_keeps_shards_separate():
    scheduler = BatchScheduler(BatchPolicy(max_batch_size=2, max_wait_ms=10.0))
    assert scheduler.offer(0, 0, key=1, arrival_ms=0.0) == []
    assert scheduler.offer(1, 1, key=2, arrival_ms=0.1) == []
    batches = scheduler.offer(0, 2, key=3, arrival_ms=0.2)
    assert len(batches) == 1 and batches[0].shard_id == 0 and batches[0].size == 2
    assert scheduler.pending(1) == 1


def test_scheduler_poll_surfaces_due_batches_without_enqueuing():
    scheduler = BatchScheduler(BatchPolicy(max_batch_size=100, max_wait_ms=1.0))
    scheduler.offer(0, 0, key=7, arrival_ms=0.0)
    assert scheduler.poll(0.5) == []  # not due yet
    due = scheduler.poll(2.0)  # past the 1.0ms deadline, no new request needed
    assert len(due) == 1 and due[0].reason == "timeout"
    assert due[0].dispatch_ms == pytest.approx(1.0)
    assert scheduler.pending(0) == 0


def test_scheduler_rejects_time_travel():
    scheduler = BatchScheduler(BatchPolicy())
    scheduler.offer(0, 0, key=1, arrival_ms=5.0)
    with pytest.raises(ValueError):
        scheduler.offer(0, 1, key=2, arrival_ms=4.0)


# --------------------------------------------------------------------------
# Result cache
# --------------------------------------------------------------------------


def test_cache_hit_negative_hit_and_miss_accounting():
    cache = ResultCache(capacity=4)
    assert cache.get(1) is None  # miss
    cache.put(1, row_agg=42, match_count=1)
    cache.put(2, row_agg=-1, match_count=0)  # negative entry
    assert cache.get(1).row_agg == 42  # hit
    assert cache.get(2).match_count == 0  # negative hit
    stats = cache.stats
    assert (stats.hits, stats.negative_hits, stats.misses) == (1, 1, 1)
    assert stats.hit_rate == pytest.approx(2 / 3)


def test_cache_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put(1, 10, 1)
    cache.put(2, 20, 1)
    cache.get(1)  # refresh key 1: key 2 becomes LRU
    cache.put(3, 30, 1)
    assert 1 in cache and 3 in cache and 2 not in cache
    assert cache.stats.evictions == 1


def test_cache_invalidation_paths():
    cache = ResultCache(capacity=8)
    cache.put(1, 10, 1)
    cache.put(2, -1, 0)
    cache.put(3, -1, 0)
    assert cache.invalidate_keys(np.asarray([1, 99])) == 1
    assert cache.invalidate_negative() == 2
    assert len(cache) == 0
    assert cache.stats.invalidations == 3


def test_sharded_index_cache_accounting(keyset):
    config = ServeConfig(
        num_shards=2, partitioner="range", key_bits=32, cache_capacity=512
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    batch = keyset.keys[:128]
    index.point_lookup_batch(batch)
    before = index.cache.stats.hits
    index.point_lookup_batch(batch)
    # Every key of the repeated batch is answered from cache.
    assert index.cache.stats.hits == before + 128
    # A repeated miss is answered by the negative cache.
    missing = np.asarray([(1 << 31) + 5], dtype=np.uint32)
    index.point_lookup_batch(missing)
    index.point_lookup_batch(missing)
    assert index.cache.stats.negative_hits >= 1
    # An insert invalidates the negative entry and the key becomes visible.
    index.update_batch(insert_keys=missing, insert_row_ids=np.asarray([9], dtype=np.uint32))
    result = index.point_lookup_batch(missing)
    np.testing.assert_array_equal(result.row_ids, [9])


# --------------------------------------------------------------------------
# Maintenance worker
# --------------------------------------------------------------------------


def degraded_cgrxu_router(keyset, num_shards=2, inserts=4096, seed=1):
    router = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=cgrxu_factory(128),
        num_shards=num_shards,
        partitioner="range",
        key_bits=32,
    )
    rng = np.random.default_rng(seed)
    insert_keys = rng.integers(0, (1 << 32) - 1, size=inserts, dtype=np.uint64).astype(np.uint32)
    router.update_batch(insert_keys=insert_keys)
    return router


@pytest.mark.parametrize("factory_name", ["cgrxu", "sorted_array"])
def test_opposing_insert_delete_is_cancelled_consistently(keyset, factory_name):
    """Regression: a key in both batch halves must net out identically on the
    live shard index and the authoritative arrays, so a background rebuild
    can never change query answers."""
    factory = cgrxu_factory(128) if factory_name == "cgrxu" else sorted_array_factory()
    config = ServeConfig(num_shards=2, partitioner="range", key_bits=32, cache_capacity=0)
    index = ShardedIndex(keyset.keys, keyset.row_ids, factory=factory, config=config)
    absent = np.asarray([(1 << 30) + 3], dtype=np.uint32)
    update = index.update_batch(
        insert_keys=absent,
        insert_row_ids=np.asarray([999], dtype=np.uint32),
        delete_keys=absent,
    )
    assert (update.inserted, update.deleted) == (0, 0)
    before = index.point_lookup_batch(absent)
    assert before.match_counts[0] == 0
    # Force the rebuild path from the authoritative arrays and re-ask.
    shard_id = int(index.router.partitioner.shard_of(absent)[0])
    index.router.rebuild_shard(shard_id)
    after = index.point_lookup_batch(absent)
    assert after.match_counts[0] == 0


def test_duplicate_heavy_delete_stays_consistent_across_rebuild():
    """Regression: cgRXu deletes must follow duplicate groups across buckets,
    or a maintenance rebuild changes the served answer."""
    keys = np.concatenate(
        [np.arange(64, dtype=np.uint32), np.full(44, 10, dtype=np.uint32)]
    )
    rows = np.arange(keys.shape[0], dtype=np.uint32)
    config = ServeConfig(num_shards=1, partitioner="range", key_bits=32, cache_capacity=0)
    index = ShardedIndex(keys, rows, factory=cgrxu_factory(128), config=config)
    update = index.update_batch(delete_keys=np.full(5, 10, dtype=np.uint32))
    assert update.deleted == 5
    before = index.point_lookup_batch(np.asarray([10], dtype=np.uint32))
    index.router.rebuild_shard(0)
    after = index.point_lookup_batch(np.asarray([10], dtype=np.uint32))
    assert int(before.match_counts[0]) == int(after.match_counts[0]) == 45 - 5
    assert int(before.row_ids[0]) == int(after.row_ids[0])


def test_duplicate_tie_order_survives_rebuild():
    """Regression: deleting one of several duplicates must remove the same
    occurrence on the live shard and in the rebuilt shard (row aggregates of
    the survivors must match)."""
    keys = np.arange(1, 65, dtype=np.uint32)  # includes key 5 with rowid 1005
    rows = (keys + 1000).astype(np.uint32)
    config = ServeConfig(num_shards=1, partitioner="range", key_bits=32, cache_capacity=0)
    index = ShardedIndex(keys, rows, factory=cgrxu_factory(128), config=config)
    index.update_batch(
        insert_keys=np.asarray([5], dtype=np.uint32),
        insert_row_ids=np.asarray([9999], dtype=np.uint32),
    )
    index.update_batch(delete_keys=np.asarray([5], dtype=np.uint32))
    before = index.point_lookup_batch(np.asarray([5], dtype=np.uint32))
    index.router.rebuild_shard(0)
    after = index.point_lookup_batch(np.asarray([5], dtype=np.uint32))
    assert int(before.match_counts[0]) == int(after.match_counts[0]) == 1
    assert int(before.row_ids[0]) == int(after.row_ids[0])


def test_degradation_score_matches_chain_walk(keyset):
    router = degraded_cgrxu_router(keyset, num_shards=1)
    shard_index = router.shards[0].index
    walked = max(0.0, shard_index.chain_statistics()["mean_chain_nodes"] - 1.0)
    assert shard_index.degradation_score() == pytest.approx(walked)
    assert shard_index.degradation_score() > 0.0


def test_maintenance_rebuilds_degraded_shards(keyset):
    router = degraded_cgrxu_router(keyset)
    worker = MaintenanceWorker(router, policy=MaintenancePolicy(rebuild_threshold=0.25))
    scores = [worker.degradation_of(s) for s in range(router.num_shards)]
    assert max(scores) >= 0.25  # the insert wave grew the chains

    enqueued = worker.scan(now_ms=1.0)
    assert enqueued, "degraded shards must enqueue rebuild tasks"
    # Duplicate scans do not double-enqueue pending work.
    assert worker.scan(now_ms=2.0) == []

    executed = worker.run_pending(now_ms=3.0)
    assert worker.rebuilds_performed == len(enqueued)
    assert worker.maintenance_time_ms > 0.0
    assert all(task.status == "done" for task in executed)
    assert max(worker.degradation_of(s) for s in range(router.num_shards)) < 0.25
    # Rebuilt shards still answer correctly.
    lookups = uniform_lookups(keyset, 64, seed=9)
    result = router.point_lookup_batch(lookups)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    # Inserted random keys may collide with looked-up keys only above the
    # generated range; counts of original keys can only grow.
    assert (result.match_counts >= counts).all()


def test_maintenance_task_is_idempotent(keyset):
    router = degraded_cgrxu_router(keyset)
    worker = MaintenanceWorker(router, policy=MaintenancePolicy(rebuild_threshold=0.25))
    worker.scan(now_ms=0.0)
    first = worker.run_pending(now_ms=1.0)
    assert any(task.status == "done" for task in first)
    # Re-enqueue the same tasks on healthy shards: they complete as no-ops.
    for task in first:
        worker.queue.enqueue(task.name, task.shard_id, now_ms=2.0)
    second = worker.run_pending(now_ms=3.0)
    assert second and all(task.status == "skipped" for task in second)
    assert worker.rebuilds_performed == len([t for t in first if t.status == "done"])


def test_maintenance_captures_errors_instead_of_raising(keyset):
    router = degraded_cgrxu_router(keyset)
    worker = MaintenanceWorker(router, policy=MaintenancePolicy(rebuild_threshold=0.25, max_attempts=1))

    @queueable
    def explode(worker, task):
        raise RuntimeError("device fell off the bus")

    try:
        task = worker.queue.enqueue("explode", 0, now_ms=0.0)
        assert task is not None
        worker.run_pending(now_ms=1.0)  # must not raise
        assert task.status == "failed"
        assert "device fell off the bus" in task.error
    finally:
        QUEUEABLE_TASKS.pop("explode", None)


def test_sharded_index_update_triggers_background_rebuild(keyset):
    config = ServeConfig(
        num_shards=2,
        partitioner="range",
        key_bits=32,
        cache_capacity=64,
        rebuild_threshold=0.25,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config)
    rng = np.random.default_rng(4)
    inserts = rng.integers(0, (1 << 32) - 1, size=4096, dtype=np.uint64).astype(np.uint32)
    update = index.update_batch(insert_keys=inserts)
    assert update.inserted == 4096
    report = index.maintenance.snapshot()
    assert report["rebuilds_performed"] >= 1
    assert report["maintenance_time_ms"] > 0.0
    assert index.degradation_score() < 0.25


def test_maintenance_trims_negative_heavy_cache():
    cache = ResultCache(capacity=8)
    cache.put(1, 10, 1)
    for key in range(100, 105):
        cache.put(key, -1, 0)  # five negatives against one positive

    class _StubRouter:
        shards = []

    worker = MaintenanceWorker(_StubRouter(), cache=cache)
    enqueued = worker.scan(now_ms=0.0)
    assert [task.name for task in enqueued] == ["trim_negative_cache"]
    executed = worker.run_pending(now_ms=1.0)
    assert executed[0].status == "done"
    assert cache.negative_count == 0 and 1 in cache
    # Healthy cache: nothing to enqueue any more.
    assert worker.scan(now_ms=2.0) == []


def test_metrics_skew_counts_cold_shards():
    from repro.serve import MetricsRegistry

    registry = MetricsRegistry(num_shards=4)
    registry.record_shard_batch(0, batch_size=30, busy_ms=3.0)
    registry.record_shard_batch(1, batch_size=10, busy_ms=1.0)
    # Shards 2 and 3 got nothing: max/mean over all four shards, not two.
    assert registry.request_skew() == pytest.approx(30 / 10)
    assert registry.busy_skew() == pytest.approx(3.0 / 1.0)


# --------------------------------------------------------------------------
# Serving streams and the bench experiment
# --------------------------------------------------------------------------


def test_serve_stream_records_telemetry(keyset):
    config = ServeConfig(
        num_shards=4,
        partitioner="range",
        key_bits=32,
        cache_capacity=256,
        max_batch_size=64,
        max_wait_ms=0.5,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(
        keyset, 1024, zipf_coefficient=1.2, requests_per_ms=64.0, miss_fraction=0.1, seed=13
    )
    metrics = index.serve_stream(stream)
    assert metrics is index.metrics  # instance telemetry is the default sink
    snapshot = metrics.snapshot()
    assert snapshot["requests"] == 1024
    assert snapshot["batches"] > 0
    assert snapshot["throughput_per_s"] > 0.0
    assert 0.0 <= snapshot["latency_p50_ms"] <= snapshot["latency_p99_ms"]
    # The latency bound holds: no request waits longer than max_wait plus the
    # device time of its batch.
    assert snapshot["latency_p99_ms"] <= config.max_wait_ms + 5.0
    assert snapshot["request_skew"] >= 1.0
    # Every request is attributed to its client.
    assert sum(metrics.client_requests.values()) == 1024
    assert snapshot["unique_clients"] > 1 and snapshot["client_skew"] >= 1.0
    # Skewed traffic makes the cache earn hits.
    assert index.cache.stats.hits > 0


def test_serve_stream_without_cache_serves_everything_on_device(keyset):
    config = ServeConfig(
        num_shards=2, partitioner="hash", key_bits=32, cache_capacity=0,
        max_batch_size=128, max_wait_ms=0.25,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(keyset, 512, zipf_coefficient=1.0, seed=21)
    metrics = index.serve_stream(stream)
    snapshot = metrics.snapshot()
    assert snapshot["requests"] == 512
    assert sum(metrics.shard_requests.values()) == 512
    assert "cache_hits" not in snapshot


def test_serving_experiment_produces_rows():
    result = serving_deployment(
        num_keys=1 << 10,
        num_requests=1 << 8,
        shard_counts=(1, 2),
        partitioners=("range",),
        zipf_coefficients=(1.0,),
        cache_capacity=128,
        max_batch_size=64,
        num_update_waves=2,
    )
    assert result.name == "serving"
    panels = {row["panel"] for row in result.rows}
    assert panels == {"a_sharding", "b_skew_cache", "c_maintenance"}
    sharding_rows = [row for row in result.rows if row["panel"] == "a_sharding"]
    assert len(sharding_rows) == 2
    assert all(row["throughput_per_s"] > 0 for row in sharding_rows)
    maintenance_rows = [row for row in result.rows if row["panel"] == "c_maintenance"]
    assert maintenance_rows[-1]["rebuilds_performed"] >= 1
    assert result.to_table()  # the harness can render it
