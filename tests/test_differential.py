"""Differential fuzzing: every index implementation against a model oracle.

A seeded fuzzer drives random operation sequences — bulk build, point-lookup
batches, range-lookup batches, update batches and **bucket compaction**
(cgRXu's incremental maintenance, which must never change an answer) —
against every baseline, ``CgRXuIndex``, a plain ``ShardedIndex`` deployment,
a *replicated* ``ShardedIndex`` with failure injection running on the
simulated clock, and a *durable* replicated deployment whose weather also
whole-process-kills replicas (recovered from the on-disk WAL + checkpoints)
and which is randomly cold-restarted from disk mid-sequence — answers must
be byte-identical after every recovery.  The oracle is the authoritative
entry array maintained with the shared update-application helpers; any
implementation whose answers drift from it fails the fuzz.

Answer comparison is implementation-agnostic but exact:

* point lookups — rowID aggregate and match count per lookup, byte-identical;
* range lookups — the *multiset* of matching rowIDs per query (compared
  sorted; result order across different index internals is not a contract).

Two generation rules keep the op space inside the documented cross-
implementation contract:

* insert and delete key sets of one batch are disjoint — opposing-pair
  cancellation is cgRXu batch semantics, pinned separately in
  ``test_update_semantics.py``, and the baselines' native update paths
  legitimately do not implement it;
* deletes remove whole duplicate groups (or miss entirely) — *which* of
  several duplicates a partial delete removes is implementation-defined.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest

from conftest import ground_truth_point, ground_truth_range
from repro.bench.harness import (
    btree_factory,
    cgrx_factory,
    cgrxu_factory,
    fullscan_factory,
    hash_table_factory,
    rtscan_factory,
    rx_factory,
    sorted_array_factory,
)
from repro.serve import ServeConfig, ShardedIndex, TenantQoS
from repro.serve.router import apply_update_to_entries
from repro.workloads.adversarial import (
    TenantSpec,
    multi_tenant_stream,
    shifting_hotspot_stream,
)
from repro.workloads.failures import failure_schedule
from repro.workloads.keygen import KeySet

#: Dense key space so duplicates and collisions actually happen.
KEYSPACE = 1 << 16
#: Keys in this range are never inserted: guaranteed misses.
MISS_BASE = 1 << 24

FACTORIES = {
    "SA": sorted_array_factory,
    "B+": btree_factory,
    "HT": hash_table_factory,
    "RX": rx_factory,  # vector engine (default)
    "RX[scalar]": lambda: rx_factory(engine="scalar"),
    "RTScan": rtscan_factory,
    "FullScan": fullscan_factory,
    "cgRX": lambda: cgrx_factory(32),  # vector engine (default)
    "cgRX[scalar]": lambda: cgrx_factory(32, engine="scalar"),
    # Compiled tier: degrades to vector when no backend is available, and the
    # degraded answers are part of the same parity contract — safe to fuzz
    # unconditionally.
    "cgRX[compiled]": lambda: cgrx_factory(32, engine="compiled"),
    "cgRXu": lambda: cgrxu_factory(128),  # vector engine (default)
    "cgRXu[scalar]": lambda: cgrxu_factory(128, engine="scalar"),
    "cgRXu[compiled]": lambda: cgrxu_factory(128, engine="compiled"),
}

CONFIGS = list(FACTORIES) + ["sharded", "replicated", "durable"]


class Oracle:
    """Dict-equivalent model: the authoritative sorted entry arrays."""

    def __init__(self, keys: np.ndarray, row_ids: np.ndarray) -> None:
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order].copy()
        self.row_ids = row_ids[order].copy()

    def apply(self, insert_keys, insert_row_ids, delete_keys) -> None:
        self.keys, self.row_ids, _ = apply_update_to_entries(
            self.keys, self.row_ids, insert_keys, insert_row_ids, delete_keys
        )

    def live_count(self, key: int) -> int:
        left = np.searchsorted(self.keys, np.uint32(key), side="left")
        right = np.searchsorted(self.keys, np.uint32(key), side="right")
        return int(right - left)

    def point(self, lookups):
        return ground_truth_point(self.keys, self.row_ids, lookups)

    def range(self, low, high):
        return ground_truth_range(self.keys, self.row_ids, low, high)


class SubjectUnderTest:
    """One fuzzed configuration: a bare index or a served deployment."""

    def __init__(
        self, name: str, keys: np.ndarray, row_ids: np.ndarray, tracing: bool = False
    ) -> None:
        self.name = name
        self.store_dir = None
        self.cold_restarts = 0
        # Cumulative across cold restarts (each restart resets the live
        # deployment's counters).
        self.process_kills = 0
        self.wal_appends = 0
        self.index = self._build(name, keys, row_ids, tracing)

    def _build(self, name, keys, row_ids, tracing):
        if name == "sharded":
            # Rebuild-fallback shards plus the result cache (invalidation on
            # the update path is part of what the fuzz checks).
            config = ServeConfig(
                num_shards=4,
                partitioner="range",
                key_bits=32,
                cache_capacity=256,
                tracing=tracing,
            )
            return ShardedIndex(keys, row_ids, factory=sorted_array_factory(), config=config)
        if name == "replicated":
            config = ServeConfig(
                num_shards=4,
                partitioner="hash",
                key_bits=32,
                cache_capacity=256,
                replication_factor=3,
                tracing=tracing,
            )
            return ShardedIndex(keys, row_ids, factory=cgrxu_factory(128), config=config)
        if name == "durable":
            self.store_dir = tempfile.mkdtemp(prefix="repro-fuzz-durable-")
            config = ServeConfig(
                num_shards=4,
                partitioner="hash",
                key_bits=32,
                cache_capacity=256,
                replication_factor=3,
                store_dir=self.store_dir,
                checkpoint_wal_records=4,
                tracing=tracing,
            )
            return ShardedIndex(keys, row_ids, factory=cgrxu_factory(128), config=config)
        keyset = KeySet(
            keys=keys.copy(), row_ids=row_ids.copy(), key_bits=32, description=name
        )
        return FACTORIES[name]()(keyset)

    @property
    def supports_point(self) -> bool:
        return bool(self.index.supports_point)

    @property
    def supports_range(self) -> bool:
        return bool(self.index.supports_range)

    def cold_restart(self) -> None:
        """Drop the deployment outright and recover it from the durable store.

        Everything in memory — every replica, cache and queue — is gone; the
        recovered deployment is rebuilt from checkpoints + WAL tails alone.
        """
        from repro.store import DeploymentStore, LocalDirBackend

        self.process_kills += int(
            self.index.replication_snapshot().get("process_kills", 0)
        )
        self.wal_appends += int(self.index.store.counters["wal_appends"])
        store = DeploymentStore(LocalDirBackend(self.store_dir), key_bits=32)
        self.index = ShardedIndex.cold_start(
            store,
            factory=cgrxu_factory(128),
            config=ServeConfig(
                cache_capacity=256,
                replication_factor=3,
                checkpoint_wal_records=4,
            ),
        )
        self.cold_restarts += 1

    def rebuild(self, oracle: Oracle) -> None:
        """Deployment-style rebuild for index types without native updates."""
        keyset = KeySet(
            keys=oracle.keys.copy(),
            row_ids=oracle.row_ids.copy(),
            key_bits=32,
            description=self.name,
        )
        self.index = FACTORIES[self.name]()(keyset)

    def update(self, oracle: Oracle, insert_keys, insert_row_ids, delete_keys) -> None:
        if self.index.supports_updates:
            self.index.update_batch(
                insert_keys=insert_keys if insert_keys.size else None,
                insert_row_ids=insert_row_ids if insert_keys.size else None,
                delete_keys=delete_keys if delete_keys.size else None,
            )
        else:
            self.rebuild(oracle)


def _absent_keys(rng, oracle: Oracle, count: int) -> np.ndarray:
    """Keys guaranteed (high range) or likely-then-verified absent (gaps)."""
    high = rng.integers(MISS_BASE, MISS_BASE * 2, size=count, dtype=np.uint64)
    gaps = rng.integers(0, KEYSPACE, size=count, dtype=np.uint64)
    candidates = np.concatenate([high, gaps]).astype(np.uint32)
    absent = candidates[~np.isin(candidates, oracle.keys)]
    return absent[:count]


def run_fuzz(
    config_name: str,
    seed: int,
    steps: int = 24,
    initial_keys: int = 1024,
    tracing: bool = False,
):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, KEYSPACE, size=initial_keys, dtype=np.uint64).astype(np.uint32)
    next_row = initial_keys
    row_ids = np.arange(initial_keys, dtype=np.uint32)

    oracle = Oracle(keys, row_ids)
    subject = SubjectUnderTest(config_name, keys, row_ids, tracing=tracing)

    # The replicated configurations run under failure weather: crash, slow
    # and transient events fire between ops as the simulated clock advances;
    # the durable one adds whole-process kills (in-memory state wiped,
    # recovered from the on-disk WAL + checkpoints).
    def make_weather(from_step: int):
        return failure_schedule(
            num_shards=4,
            replication_factor=3,
            duration_ms=float(steps),
            crashes_per_s=80_000.0,  # rates are per second; 1ms per step
            slowdowns_per_s=40_000.0,
            transients_per_s=160_000.0,
            mean_outage_ms=2.0,
            process_kills_per_s=40_000.0 if config_name == "durable" else 0.0,
            seed=seed + 1 + from_step,
        )

    injector = None
    if config_name in ("replicated", "durable"):
        injector = subject.index.inject_failures(make_weather(0))

    ops = ["point", "range", "update", "compact"]
    probabilities = [0.35, 0.25, 0.3, 0.1]
    if config_name == "durable":
        # A cold restart from disk rides along with every other op kind.
        ops, probabilities = ops + ["restart"], [0.3, 0.22, 0.28, 0.1, 0.1]

    for step in range(1, steps + 1):
        if injector is not None:
            if injector.poll(float(step)):
                subject.index.maintenance.run_cycle(float(step))

        op = rng.choice(ops, p=probabilities)
        if op == "restart":
            # The whole process dies: recover from disk and prove every
            # acknowledged write survived, byte for byte, before going on.
            subject.cold_restart()
            injector = subject.index.inject_failures(make_weather(step))
            probe = np.concatenate(
                [np.unique(oracle.keys), _absent_keys(rng, oracle, 8)]
            ).astype(np.uint32)
            result = subject.index.point_lookup_batch(probe)
            expected_agg, expected_counts = oracle.point(probe)
            np.testing.assert_array_equal(
                result.row_ids, expected_agg,
                err_msg=f"{config_name}: answers diverged after cold restart at step {step}",
            )
            np.testing.assert_array_equal(
                result.match_counts, expected_counts,
                err_msg=f"{config_name}: counts diverged after cold restart at step {step}",
            )
            continue
        if op == "compact":
            # Interleaved incremental maintenance: compact random buckets of
            # a cgRXu index (both engines), or the hottest chains of a random
            # shard of a served deployment (a no-op for chain-free inner
            # types).  Answers checked by every later op must not move.
            index = subject.index
            if hasattr(index, "compact_buckets"):
                num_buckets = index.overflow_bucket + 1
                index.compact_buckets(
                    rng.integers(0, num_buckets, size=min(8, num_buckets))
                )
            elif hasattr(index, "router"):
                index.router.compact_shard(int(rng.integers(0, index.router.num_shards)))
            continue
        if op == "point":
            if not subject.supports_point:  # RTScan is range-only
                continue
            num = int(rng.integers(1, 64))
            live = (
                rng.choice(oracle.keys, size=num)
                if oracle.keys.size
                else np.empty(0, dtype=np.uint32)
            )
            lookups = np.concatenate([live, _absent_keys(rng, oracle, max(1, num // 4))])
            rng.shuffle(lookups)
            lookups = lookups.astype(np.uint32)
            result = subject.index.point_lookup_batch(lookups)
            expected_agg, expected_counts = oracle.point(lookups)
            np.testing.assert_array_equal(
                result.row_ids, expected_agg,
                err_msg=f"{config_name}: point aggregates diverged at step {step}",
            )
            np.testing.assert_array_equal(
                result.match_counts, expected_counts,
                err_msg=f"{config_name}: point counts diverged at step {step}",
            )
        elif op == "range":
            if not subject.supports_range:
                continue
            num = int(rng.integers(1, 8))
            bounds = rng.integers(0, KEYSPACE, size=(num, 2), dtype=np.uint64).astype(np.uint32)
            lows = np.minimum(bounds[:, 0], bounds[:, 1])
            highs = np.maximum(bounds[:, 0], bounds[:, 1])
            result = subject.index.range_lookup_batch(lows, highs)
            for position in range(num):
                expected = oracle.range(int(lows[position]), int(highs[position]))
                np.testing.assert_array_equal(
                    np.sort(result.row_ids[position]), np.sort(expected),
                    err_msg=f"{config_name}: range {position} diverged at step {step}",
                )
        else:
            num_inserts = int(rng.integers(0, 48))
            insert_keys = rng.integers(0, KEYSPACE, size=num_inserts, dtype=np.uint64).astype(
                np.uint32
            )
            insert_rows = np.arange(next_row, next_row + num_inserts, dtype=np.uint32)
            next_row += num_inserts
            # Deletes: whole duplicate groups of sampled live keys plus some
            # guaranteed misses — never keys of this batch's insert half.
            delete_parts = []
            if oracle.keys.size:
                chosen = np.unique(rng.choice(oracle.keys, size=int(rng.integers(1, 16))))
                chosen = chosen[~np.isin(chosen, insert_keys)]
                for key in chosen:
                    delete_parts.append(
                        np.full(oracle.live_count(int(key)), key, dtype=np.uint32)
                    )
            misses = _absent_keys(rng, oracle, 3)
            delete_parts.append(misses[~np.isin(misses, insert_keys)])
            delete_keys = (
                np.concatenate(delete_parts) if delete_parts else np.empty(0, dtype=np.uint32)
            )
            # Model first: rebuild-fallback subjects snapshot the oracle, so
            # it must already reflect this batch.
            oracle.apply(insert_keys, insert_rows, delete_keys)
            subject.update(oracle, insert_keys, insert_rows, delete_keys)

    # Closing sweep: every live key (and a miss batch) answers identically;
    # range-only subjects sweep the full keyspace instead.
    if subject.supports_point:
        probe = np.concatenate([np.unique(oracle.keys), _absent_keys(rng, oracle, 16)])
        result = subject.index.point_lookup_batch(probe)
        expected_agg, expected_counts = oracle.point(probe)
        np.testing.assert_array_equal(result.row_ids, expected_agg)
        np.testing.assert_array_equal(result.match_counts, expected_counts)
    else:
        full = subject.index.range_lookup_batch(
            np.asarray([0], dtype=np.uint32),
            np.asarray([np.iinfo(np.uint32).max], dtype=np.uint32),
        )
        np.testing.assert_array_equal(np.sort(full.row_ids[0]), np.sort(oracle.row_ids))
    if subject.store_dir is not None:
        shutil.rmtree(subject.store_dir, ignore_errors=True)
    return subject, oracle


@pytest.mark.parametrize("config_name", CONFIGS)
def test_differential_fuzz(config_name):
    run_fuzz(config_name, seed=20250729)


def test_differential_fuzz_replicated_sees_failures():
    """The replicated fuzz run actually exercises failover machinery."""
    subject, _ = run_fuzz("replicated", seed=42, steps=16)
    snapshot = subject.index.replication_snapshot()
    assert snapshot["crashes"] >= 1
    assert subject.index.failures is not None and subject.index.failures.log


def test_differential_fuzz_durable_recovers_from_disk():
    """The durable fuzz run actually loses processes and recovers from disk."""
    subject, _ = run_fuzz("durable", seed=7, steps=32)
    snapshot = subject.index.replication_snapshot()
    kills = subject.process_kills + int(snapshot.get("process_kills", 0))
    appends = subject.wal_appends + int(subject.index.store.counters["wal_appends"])
    assert kills >= 1
    assert subject.cold_restarts >= 1
    assert appends >= 1


def test_differential_fuzz_replicated_traced_is_behavior_neutral():
    """Tracing must never change an answer or a counter.

    The same seeded replicated fuzz run (failure weather, updates,
    compaction) passes its oracle checks with tracing on, actually records
    spans, and ends with the same replication counters and metrics counters
    as the untraced run.
    """
    traced, _ = run_fuzz("replicated", seed=20250808, tracing=True)
    untraced, _ = run_fuzz("replicated", seed=20250808)
    assert traced.index.tracer.spans, "traced run recorded no spans"
    assert not untraced.index.tracer.spans
    assert (
        traced.index.replication_snapshot() == untraced.index.replication_snapshot()
    )
    assert traced.index.metrics.counters == untraced.index.metrics.counters
    # repr-compare so NaN latency reductions (no served stream here) match.
    assert repr(traced.index.metrics.snapshot()) == repr(
        untraced.index.metrics.snapshot()
    )


# --------------------------------------------------------------------------
# Adaptive serving fuzz: tenants, hotspot shift, updates, resharding
# --------------------------------------------------------------------------


def _served_chunk_matches_oracle(index, oracle, stream) -> int:
    """Serve one chunk and compare every non-shed answer to the oracle.

    Negative (signed) keys must come back as the deterministic miss
    ``(-1, 0)``; shed requests are excluded from the comparison but their
    answer slots must be untouched.  Returns the number of shed requests.
    """
    stream.arrival_ms += float(index.clock.now_ms) + 1.0
    index.serve_stream(stream, record_answers=True)
    row_agg, counts = index.last_answers
    shed = index.last_shed
    served = ~shed

    keys = np.asarray(stream.keys)
    if np.issubdtype(keys.dtype, np.signedinteger):
        negative = keys < 0
        lookups = np.where(negative, 0, keys).astype(np.uint32)
    else:
        negative = np.zeros(keys.shape[0], dtype=bool)
        lookups = keys.astype(np.uint32)
    expected_agg, expected_counts = oracle.point(lookups)
    expected_agg = np.where(negative, -1, expected_agg)
    expected_counts = np.where(negative, 0, expected_counts)

    assert row_agg[served].tobytes() == expected_agg[served].tobytes()
    assert counts[served].tobytes() == expected_counts[served].tobytes()
    np.testing.assert_array_equal(row_agg[shed], -1)
    np.testing.assert_array_equal(counts[shed], 0)
    return int(shed.sum())


def test_differential_fuzz_adaptive_multi_tenant():
    """Adaptive deployment under mixed hostile ops stays oracle-exact.

    The op mix interleaves unlabeled shifting-hotspot chunks (driving the
    split/merge policy), multi-tenant chunks with a rate-limited flooding
    tenant and negative keys mixed in (driving admission control and the
    signed-key boundary), and update batches that move the oracle between
    chunks.  Every non-shed answer must stay byte-identical throughout,
    across actual topology changes.
    """
    rng = np.random.default_rng(20250808)
    keys = rng.integers(0, KEYSPACE, size=1024, dtype=np.uint32)
    row_ids = np.arange(keys.shape[0], dtype=np.uint32)
    oracle = Oracle(keys, row_ids)

    config = ServeConfig(
        num_shards=4,
        partitioner="range",
        key_bits=32,
        cache_capacity=256,
        max_batch_size=512,
        max_wait_ms=0.05,
        tenants=(
            TenantQoS(tenant=1, priority=0, rate_limit_per_ms=2.0, cache_share=0.25),
            TenantQoS(tenant=2, priority=2, cache_share=0.25),
        ),
        max_queue_depth=256,
        reshard=True,
        reshard_interval_ms=1.0,
        reshard_split_skew=1.5,
        reshard_min_split_entries=64,
        reshard_max_shards=16,
    )
    index = ShardedIndex(
        keys, row_ids, factory=sorted_array_factory(), config=config
    )

    total_shed = 0
    for step in range(3):
        current = KeySet(
            keys=oracle.keys.copy(),
            row_ids=oracle.row_ids.copy(),
            key_bits=32,
            description="fuzz entries",
        )

        # Hotspot chunk: unlabeled traffic whose hot window sweeps the
        # keyspace, concentrating load on one shard at a time.
        hotspot = shifting_hotspot_stream(
            current,
            count=1200,
            num_phases=2,
            requests_per_ms=400.0,
            seed=1000 + step,
        )
        total_shed += _served_chunk_matches_oracle(index, oracle, hotspot)

        # Tenant chunk: a flooding tenant hammering a per-step window of the
        # keyspace (rate-limited) against a low-rate victim, with negative
        # keys mixed into the flood.
        window_lo = 0.2 * step
        tenants = multi_tenant_stream(
            current,
            [
                TenantSpec(
                    tenant=1,
                    requests_per_ms=24.0,
                    zipf_coefficient=0.7,
                    keyspace=(window_lo, window_lo + 0.3),
                ),
                TenantSpec(tenant=2, requests_per_ms=2.0),
            ],
            duration_ms=20.0,
            seed=2000 + step,
        )
        signed = tenants.keys.astype(np.int64)
        flip = rng.random(signed.shape[0]) < 0.03
        signed[flip] = -rng.integers(1, 1 << 20, size=int(flip.sum()))
        tenants.keys = signed
        total_shed += _served_chunk_matches_oracle(index, oracle, tenants)

        # Update batch: disjoint inserts and whole-group deletes, applied to
        # deployment and oracle alike.
        insert_keys = _absent_keys(rng, oracle, 32)
        insert_rows = rng.integers(
            0, 1 << 20, size=insert_keys.shape[0], dtype=np.uint32
        )
        stored = np.unique(oracle.keys)
        delete_keys = rng.choice(
            stored, size=min(16, stored.shape[0]), replace=False
        )
        index.update_batch(
            insert_keys=insert_keys,
            insert_row_ids=insert_rows,
            delete_keys=delete_keys,
        )
        oracle.apply(insert_keys, insert_rows, delete_keys)

    # The hostile mix actually exercised the machinery under test.
    assert index.router.reshard_counts["split"] >= 1
    assert total_shed > 0
    assert index.admission is not None and index.admission.total_shed == total_shed

    # Closing sweep: the full keyspace still matches the oracle exactly.
    full = index.range_lookup_batch(
        np.asarray([0], dtype=np.uint32),
        np.asarray([np.iinfo(np.uint32).max], dtype=np.uint32),
    )
    np.testing.assert_array_equal(np.sort(full.row_ids[0]), np.sort(oracle.row_ids))
