"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.keygen import generate_keys


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_example_keys():
    """The running-example key set from Figures 4-7 of the paper.

    13 keys, duplicates of 19 spanning two buckets of size 3, mapped with the
    small (3, 2, rest) example mapping.
    """
    return np.array([2, 4, 5, 6, 12, 17, 18, 19, 19, 19, 19, 19, 22], dtype=np.uint64)


@pytest.fixture
def paper_example_rowids():
    """RowIDs used in Figure 4 of the paper for the running example."""
    return np.array([3, 7, 1, 8, 2, 0, 12, 6, 9, 10, 4, 11, 5], dtype=np.uint32)


@pytest.fixture
def mixed_keyset_32():
    """A small 32-bit key set mixing a dense prefix with uniform keys."""
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=7)


@pytest.fixture
def mixed_keyset_64():
    """A small 64-bit key set mixing a dense prefix with uniform keys."""
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=64, seed=11)


def ground_truth_point(keys, row_ids, lookups):
    """Duplicate-aware ground truth for point lookups (aggregate, count)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_rows = row_ids[order].astype(np.int64)
    prefix = np.concatenate([[0], np.cumsum(sorted_rows)])
    left = np.searchsorted(sorted_keys, lookups, side="left")
    right = np.searchsorted(sorted_keys, lookups, side="right")
    agg = np.where(left < right, prefix[right] - prefix[left], -1)
    return agg, (right - left)


def ground_truth_range(keys, row_ids, low, high):
    """Ground-truth rowIDs for a range lookup [low, high]."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_rows = row_ids[order]
    first = np.searchsorted(sorted_keys, low, side="left")
    stop = np.searchsorted(sorted_keys, high, side="right")
    return sorted_rows[first:stop]
