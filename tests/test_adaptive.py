"""Adaptive serving: signed-key routing, split/merge lifecycle, QoS, accounting.

Regression coverage for the three correctness fixes of this change set —
signed keys must clamp below the unsigned keyspace instead of wrapping onto
the top shard, ``LogBucketHistogram`` extreme percentiles must answer from
the exact extrema rather than a bucket representative, and whole-cache
clears must be accounted separately from exact-key invalidations — plus the
adaptive machinery they ride with: dynamic shard split/merge on the epoch
lifecycle, per-tenant admission control and load shedding, partitioned
result caches, and the adversarial workload generators that exercise it all.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ground_truth_point, ground_truth_range
from repro.obs import LogBucketHistogram
from repro.serve import (
    AdmissionController,
    HashPartitioner,
    RangePartitioner,
    ResultCache,
    ServeConfig,
    ShardedIndex,
    TenantQoS,
)
from repro.workloads.adversarial import (
    TenantSpec,
    multi_tenant_stream,
    range_hammer_stream,
    shifting_hotspot_stream,
)
from repro.workloads.keygen import generate_keys


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=64, seed=47)


def _row_ids(keyset):
    return keyset.row_ids.astype(np.int64)


# --------------------------------------------------------------------------
# Bugfix 1: signed keys clamp below the keyspace, never wrap onto the top shard
# --------------------------------------------------------------------------


def test_negative_keys_route_to_lowest_shard(keyset):
    partitioner = RangePartitioner(keyset.keys, num_shards=4)
    negatives = np.array([-1, -5, -(2**40)], dtype=np.int64)
    # Pre-fix, astype(uint64) wrapped these to the top of the keyspace and
    # routed every one of them to the last shard.
    np.testing.assert_array_equal(
        partitioner.shard_of(negatives), np.zeros(3, dtype=np.int64)
    )


def test_negative_keys_hash_like_key_zero():
    partitioner = HashPartitioner(num_shards=5)
    shards = partitioner.shard_of(np.array([-1, -(2**31)], dtype=np.int64))
    expected = partitioner.shard_of(np.array([0, 0], dtype=np.uint64))
    np.testing.assert_array_equal(shards, expected)


@pytest.mark.parametrize("kind", ["range", "hash"])
def test_negative_range_endpoints(keyset, kind):
    if kind == "range":
        partitioner = RangePartitioner(keyset.keys, num_shards=4)
    else:
        partitioner = HashPartitioner(num_shards=4)
    # Entirely-negative ranges touch no shard.
    assert partitioner.shards_for_range(-10, -1).shape[0] == 0
    # A straddling range clamps its low end to key 0.
    high = int(np.sort(keyset.keys)[100])
    np.testing.assert_array_equal(
        partitioner.shards_for_range(-10, high),
        partitioner.shards_for_range(0, high),
    )


@pytest.mark.parametrize("kind", ["range", "hash"])
def test_shard_span_batch_negative_and_empty(keyset, kind):
    if kind == "range":
        partitioner = RangePartitioner(keyset.keys, num_shards=4)
    else:
        partitioner = HashPartitioner(num_shards=4)
    lows = np.array([-100, -50, 0], dtype=np.int64)
    highs = np.array([-10, int(np.sort(keyset.keys)[500]), -1], dtype=np.int64)
    first, last = partitioner.shard_span_batch(lows, highs)
    # Negative-high queries get an empty span (first > last) ...
    assert first[0] > last[0] and first[2] > last[2]
    # ... while the straddling query spans real shards starting at shard 0.
    assert first[1] == 0 and last[1] >= 0
    # An empty batch passes through without touching anything.
    empty = np.empty(0, dtype=np.int64)
    first, last = partitioner.shard_span_batch(empty, empty)
    assert first.shape == (0,) and last.shape == (0,)


def test_router_negative_point_keys_are_deterministic_misses(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    sorted_keys = np.sort(keyset.keys)
    lookups = np.concatenate(
        [
            np.array([-1, -(2**33), -7], dtype=np.int64),
            sorted_keys[:5].astype(np.int64),
        ]
    )
    result = index.point_lookup_batch(lookups)
    agg, counts = ground_truth_point(
        keyset.keys, _row_ids(keyset), sorted_keys[:5]
    )
    np.testing.assert_array_equal(result.row_ids[:3], [-1, -1, -1])
    np.testing.assert_array_equal(result.match_counts[:3], [0, 0, 0])
    np.testing.assert_array_equal(result.row_ids[3:], agg)
    np.testing.assert_array_equal(result.match_counts[3:], counts)


def test_router_negative_range_endpoints_clamp(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    sorted_keys = np.sort(keyset.keys)
    high = int(sorted_keys[60])
    result = index.range_lookup_batch(
        np.array([-100, -100], dtype=np.int64),
        np.array([high, -1], dtype=np.int64),
    )
    expected = ground_truth_range(keyset.keys, keyset.row_ids, 0, high)
    np.testing.assert_array_equal(
        np.sort(result.row_ids[0]), np.sort(expected)
    )
    # An entirely-negative range matches nothing.
    assert result.row_ids[1].shape[0] == 0


def test_update_batch_rejects_negative_keys(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    with pytest.raises(ValueError, match="negative insert"):
        index.update_batch(insert_keys=np.array([-3], dtype=np.int64))
    with pytest.raises(ValueError, match="negative delete"):
        index.update_batch(delete_keys=np.array([-3], dtype=np.int64))


# --------------------------------------------------------------------------
# Bugfix 2: extreme percentiles answer from the exact extrema
# --------------------------------------------------------------------------


def test_histogram_extreme_percentiles_are_exact():
    histogram = LogBucketHistogram()
    samples = [0.173, 3.7, 55.1, 912.4]
    for value in samples:
        histogram.record(value)
    # Pre-fix, p0/p100 reported the geometric midpoint of the covering
    # bucket, which almost never equals the recorded extremum.
    assert histogram.percentile(0.0) == min(samples)
    assert histogram.percentile(100.0) == max(samples)
    assert min(samples) <= histogram.percentile(50.0) <= max(samples)


def test_histogram_extrema_exact_after_bulk_record_and_merge():
    left = LogBucketHistogram()
    left.record_many(np.array([4.44, 17.2]))
    right = LogBucketHistogram()
    right.record_many(np.array([0.0061, 260.9]))
    left.merge(right)
    assert left.percentile(0.0) == 0.0061
    assert left.percentile(100.0) == 260.9
    assert left.minimum == 0.0061 and left.maximum == 260.9


# --------------------------------------------------------------------------
# Bugfix 3: whole-cache clears are not exact-key invalidations
# --------------------------------------------------------------------------


def test_cache_clear_accounts_bulk_drops_separately():
    cache = ResultCache(capacity=8)
    for key in range(5):
        cache.put(key, row_agg=key * 10, match_count=1)
    assert cache.invalidate_keys(np.array([0, 1])) == 2
    assert cache.stats.invalidations == 2
    # Pre-fix, clear() folded the whole-cache drop into `invalidations`,
    # making update churn look five entries larger than it was.
    assert cache.clear() == 3
    assert cache.stats.bulk_clears == 3
    assert cache.stats.invalidations == 2
    assert len(cache) == 0
    assert cache.stats.snapshot()["bulk_clears"] == 3


# --------------------------------------------------------------------------
# Partitioned result cache (per-tenant isolation)
# --------------------------------------------------------------------------


def test_cache_partitions_isolate_tenants():
    cache = ResultCache(capacity=8, partitions={1: 0.5})
    assert cache.tenant_ids == (1,)
    cache.put(99, row_agg=5, match_count=1)  # shared partition
    # Tenant 1 floods its own slice (capacity 4): evictions stay inside it.
    for key in range(10):
        cache.put(key, row_agg=key, match_count=1, tenant=1)
    assert cache.stats.evictions == 6
    assert cache.partition_sizes()[1] == 4
    assert cache.partition_sizes()[None] == 1
    assert cache.get(99) is not None
    # Isolation on lookup: a tenant can't observe another partition's entry.
    assert cache.get(99, tenant=1) is None
    # An unconfigured tenant lands in the shared partition.
    cache.put(7, row_agg=70, match_count=1, tenant=2)
    assert cache.get(7) is not None


def test_cache_invalidation_crosses_partitions():
    cache = ResultCache(capacity=8, partitions={1: 0.5})
    cache.put(42, row_agg=1, match_count=1)
    cache.put(42, row_agg=1, match_count=1, tenant=1)
    assert cache.invalidate_keys(np.array([42])) == 2
    assert cache.stats.invalidations == 2
    assert 42 not in cache


def test_cache_rejects_oversubscribed_shares():
    with pytest.raises(ValueError):
        ResultCache(capacity=8, partitions={1: 0.7, 2: 0.7})


def test_cache_duplicate_keys_within_one_batch():
    cache = ResultCache(capacity=8)
    keys = np.array([5, 5, 5], dtype=np.int64)
    cache.fill_batch(
        keys,
        np.array([10, 20, 30], dtype=np.int64),
        np.array([1, 1, 2], dtype=np.int64),
    )
    # Duplicates refresh in place: one resident entry, one insertion, and
    # the last write of the batch wins.
    assert len(cache) == 1
    assert cache.stats.insertions == 1
    cached, row_agg, counts = cache.probe_batch(keys)
    assert cached.all()
    np.testing.assert_array_equal(row_agg, [30, 30, 30])
    np.testing.assert_array_equal(counts, [2, 2, 2])


# --------------------------------------------------------------------------
# Dynamic split/merge: partitioner, two-phase router lifecycle
# --------------------------------------------------------------------------


def test_range_partitioner_split_then_merge_roundtrip(keyset):
    partitioner = RangePartitioner(keyset.keys, num_shards=4)
    original = partitioner.boundaries.copy()
    lower, upper = int(original[0]), int(original[1])
    split_key = (lower + upper) // 2
    partitioner.split_at(1, split_key)
    assert partitioner.num_shards == 5
    below = np.array([split_key - 1], dtype=np.uint64)
    at = np.array([split_key], dtype=np.uint64)
    assert int(partitioner.shard_of(below)[0]) == 1
    assert int(partitioner.shard_of(at)[0]) == 2
    partitioner.merge_with_next(1)
    assert partitioner.num_shards == 4
    np.testing.assert_array_equal(partitioner.boundaries, original)


def test_range_partitioner_split_validates_key(keyset):
    partitioner = RangePartitioner(keyset.keys, num_shards=4)
    with pytest.raises(ValueError):
        partitioner.split_at(1, int(partitioner.boundaries[1]) + 1)
    with pytest.raises(ValueError):
        partitioner.merge_with_next(3)  # last shard has no right neighbour


def test_hash_partitioner_cannot_reshard():
    partitioner = HashPartitioner(num_shards=4)
    assert not partitioner.supports_resharding
    with pytest.raises(NotImplementedError):
        partitioner.split_at(0, 10)


def _fresh_key(existing, low, high):
    """A key inside [low, high] that is not already stored."""
    candidate = (int(low) + int(high)) // 2
    present = set(int(k) for k in existing)
    while candidate in present:
        candidate += 1
    return candidate


def test_shard_split_survives_interleaved_writes(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    router = index.router
    version = router.topology_version
    boundaries = router.partitioner.boundaries
    new_key = _fresh_key(keyset.keys, boundaries[0], boundaries[1])

    router.begin_shard_split(1)
    # A write landing in the splitting shard between the two phases must
    # survive the commit (the epoch catch-up rebuild replays it).
    index.update_batch(
        insert_keys=np.array([new_key], dtype=np.uint64),
        insert_row_ids=np.array([999_983], dtype=np.uint32),
    )
    router.commit_shard_split(1)

    assert router.num_shards == 5
    assert router.topology_version == version + 1
    assert router.reshard_counts["split"] == 1

    all_keys = np.concatenate([keyset.keys, [np.uint64(new_key)]])
    all_rows = np.concatenate([_row_ids(keyset), [999_983]])
    lookups = np.concatenate([np.sort(keyset.keys)[::7], [np.uint64(new_key)]])
    agg, counts = ground_truth_point(all_keys, all_rows, lookups)
    result = index.point_lookup_batch(lookups)
    np.testing.assert_array_equal(result.row_ids, agg)
    np.testing.assert_array_equal(result.match_counts, counts)


def test_shard_merge_survives_interleaved_writes(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    router = index.router
    boundaries = router.partitioner.boundaries
    new_key = _fresh_key(keyset.keys, boundaries[0], boundaries[1])

    router.begin_shard_merge(1)
    index.update_batch(
        insert_keys=np.array([new_key], dtype=np.uint64),
        insert_row_ids=np.array([424_242], dtype=np.uint32),
    )
    router.commit_shard_merge(1)

    assert router.num_shards == 3
    assert router.reshard_counts["merge"] == 1
    result = index.point_lookup_batch(np.array([new_key], dtype=np.uint64))
    np.testing.assert_array_equal(result.row_ids, [424_242])
    np.testing.assert_array_equal(result.match_counts, [1])


def test_abort_reshard_restores_topology(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    router = index.router
    version = router.topology_version
    router.begin_shard_split(2)
    router.abort_reshard(2)
    assert router.num_shards == 4
    assert router.topology_version == version
    assert router.reshard_counts["split"] == 0
    lookups = np.sort(keyset.keys)[::11]
    agg, counts = ground_truth_point(keyset.keys, _row_ids(keyset), lookups)
    result = index.point_lookup_batch(lookups)
    np.testing.assert_array_equal(result.row_ids, agg)
    np.testing.assert_array_equal(result.match_counts, counts)


def test_resharding_requires_range_unreplicated(keyset):
    with pytest.raises(ValueError, match="range partitioner"):
        ShardedIndex(
            keyset.keys,
            config=ServeConfig(partitioner="hash", reshard=True),
        )
    with pytest.raises(ValueError, match="replicated"):
        ShardedIndex(
            keyset.keys,
            config=ServeConfig(reshard=True, replication_factor=3),
        )


# --------------------------------------------------------------------------
# Admission control and load shedding
# --------------------------------------------------------------------------


def test_admission_rate_limit_token_bucket():
    controller = AdmissionController(
        tenants=[TenantQoS(tenant=1, rate_limit_per_ms=1.0, burst=1.0)]
    )
    assert controller.admit(1, now_ms=0.0, queue_depth=0).admitted
    decision = controller.admit(1, now_ms=0.0, queue_depth=0)
    assert not decision.admitted and decision.reason == "rate_limit"
    # Tokens refill on the simulated clock.
    assert controller.admit(1, now_ms=2.0, queue_depth=0).admitted
    assert controller.shed_counts[(1, "rate_limit")] == 1
    # An unconfigured tenant is never rate limited.
    assert controller.admit(9, now_ms=0.0, queue_depth=0).admitted


def test_admission_saturation_sheds_by_priority():
    controller = AdmissionController(
        tenants=[
            TenantQoS(tenant=1, priority=0),
            TenantQoS(tenant=2, priority=2),
        ],
        max_queue_depth=10,
        hard_limit_factor=2.0,
    )
    # Below the threshold everyone is admitted.
    assert controller.admit(1, 0.0, queue_depth=9).admitted
    # At saturation only the top-priority tenant survives.
    saturated = controller.admit(1, 0.0, queue_depth=10)
    assert not saturated.admitted and saturated.reason == "saturated"
    assert controller.admit(2, 0.0, queue_depth=10).admitted
    # Unlabeled traffic has priority 0 and is shed too.
    assert not controller.admit(-1, 0.0, queue_depth=10).admitted
    # Past the hard limit even the top-priority tenant is shed.
    overload = controller.admit(2, 0.0, queue_depth=20)
    assert not overload.admitted and overload.reason == "overload"
    assert controller.total_shed == 3


def test_admission_validation():
    with pytest.raises(ValueError, match="duplicate"):
        AdmissionController(
            tenants=[TenantQoS(tenant=1), TenantQoS(tenant=1)]
        )
    with pytest.raises(ValueError):
        TenantQoS(tenant=1, rate_limit_per_ms=-1.0)
    with pytest.raises(ValueError):
        TenantQoS(tenant=1, cache_share=1.5)
    controller = AdmissionController(
        tenants=[
            TenantQoS(tenant=1, cache_share=0.25),
            TenantQoS(tenant=2),
        ]
    )
    assert controller.cache_partitions() == {1: 0.25}


# --------------------------------------------------------------------------
# Served streams: shedding, tenant telemetry, adaptive resharding, negatives
# --------------------------------------------------------------------------


def test_serve_sheds_flood_and_answers_rest_exactly(keyset):
    stream = multi_tenant_stream(
        keyset,
        [
            TenantSpec(tenant=1, requests_per_ms=6.0, zipf_coefficient=0.6),
            TenantSpec(tenant=2, requests_per_ms=0.5),
        ],
        duration_ms=60.0,
        seed=3,
    )
    config = ServeConfig(
        num_shards=4,
        cache_capacity=256,
        max_wait_ms=0.05,
        tenants=(
            TenantQoS(tenant=1, priority=0, rate_limit_per_ms=1.0, cache_share=0.25),
            TenantQoS(tenant=2, priority=2, cache_share=0.25),
        ),
        max_queue_depth=64,
    )
    index = ShardedIndex(keyset.keys, config=config)
    assert index.cache is not None and index.cache.tenant_ids == (1, 2)

    metrics = index.serve_stream(stream, record_answers=True)
    shed = index.last_shed
    assert shed is not None and shed.sum() > 0
    assert int(shed.sum()) == index.admission.total_shed

    # Shedding only ever hits the flooding tenant here (its rate limit).
    assert not shed[stream.tenant_ids == 2].any()

    # Served requests are byte-identical to the oracle; shed slots untouched.
    row_agg, counts = index.last_answers
    expected_agg, expected_counts = ground_truth_point(
        keyset.keys, _row_ids(keyset), stream.keys
    )
    served = ~shed
    assert row_agg[served].tobytes() == expected_agg[served].tobytes()
    assert counts[served].tobytes() == expected_counts[served].tobytes()
    np.testing.assert_array_equal(row_agg[shed], -1)
    np.testing.assert_array_equal(counts[shed], 0)

    snap = metrics.snapshot()
    assert snap["requests_shed"] == index.admission.total_shed
    assert snap["tenant_1_shed_rate_limit"] > 0
    assert snap["tenant_2_requests"] == int((stream.tenant_ids == 2).sum())
    assert snap["tenant_2_p99_ms"] >= snap["tenant_2_p50_ms"] > 0


def test_serve_adaptive_reshard_keeps_answers_byte_identical(keyset):
    stream = shifting_hotspot_stream(
        keyset, count=4000, num_phases=3, requests_per_ms=400.0, seed=5
    )
    config = ServeConfig(
        num_shards=4,
        cache_capacity=0,
        max_batch_size=512,
        max_wait_ms=0.05,
        reshard=True,
        reshard_interval_ms=1.0,
        reshard_max_shards=16,
        reshard_min_split_entries=64,
    )
    index = ShardedIndex(keyset.keys, config=config)
    metrics = index.serve_stream(stream, record_answers=True)

    # The hotspot forced at least one split and the topology actually moved.
    assert index.router.num_shards > 4
    assert index.router.reshard_counts["split"] >= 1
    assert index.maintenance.snapshot()["splits_performed"] >= 1
    assert metrics.num_shards == index.router.num_shards

    # Zero-downtime contract: every answer matches the oracle exactly, and
    # nothing was shed (no admission control armed).
    assert index.last_shed is None or not index.last_shed.any()
    row_agg, counts = index.last_answers
    expected_agg, expected_counts = ground_truth_point(
        keyset.keys, _row_ids(keyset), stream.keys
    )
    assert row_agg.tobytes() == expected_agg.tobytes()
    assert counts.tobytes() == expected_counts.tobytes()


def test_serve_negative_keys_are_host_side_misses(keyset):
    stream = range_hammer_stream(
        keyset, count=1500, negative_fraction=0.2, seed=7
    )
    negative = stream.keys < 0
    assert negative.any()  # the generator must actually mix negatives in

    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=128)
    )
    metrics = index.serve_stream(stream, record_answers=True)
    row_agg, counts = index.last_answers
    np.testing.assert_array_equal(row_agg[negative], -1)
    np.testing.assert_array_equal(counts[negative], 0)

    expected_agg, expected_counts = ground_truth_point(
        keyset.keys, _row_ids(keyset), stream.keys[~negative].astype(np.uint64)
    )
    assert row_agg[~negative].tobytes() == expected_agg.tobytes()
    assert counts[~negative].tobytes() == expected_counts.tobytes()
    assert metrics.snapshot()["negative_key_misses"] == int(negative.sum())


# --------------------------------------------------------------------------
# Full-keyspace ranges and empty batches through the deployment
# --------------------------------------------------------------------------


def test_full_keyspace_range_touches_every_shard_and_row(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    top = np.uint64(2**64 - 1)
    shards = index.router.partitioner.shards_for_range(0, int(top))
    np.testing.assert_array_equal(shards, np.arange(4))
    result = index.range_lookup_batch(
        np.array([0], dtype=np.uint64), np.array([top], dtype=np.uint64)
    )
    np.testing.assert_array_equal(
        np.sort(result.row_ids[0]), np.sort(keyset.row_ids)
    )


def test_empty_batches_round_trip(keyset):
    index = ShardedIndex(
        keyset.keys, config=ServeConfig(num_shards=4, cache_capacity=0)
    )
    point = index.point_lookup_batch(np.empty(0, dtype=np.uint64))
    assert point.row_ids.shape == (0,)
    ranges = index.range_lookup_batch(
        np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint64)
    )
    assert len(ranges.row_ids) == 0


# --------------------------------------------------------------------------
# Adversarial stream generators
# --------------------------------------------------------------------------


def test_adversarial_generators_are_deterministic(keyset):
    for make in (
        lambda seed: shifting_hotspot_stream(keyset, 500, seed=seed),
        lambda seed: range_hammer_stream(keyset, 500, seed=seed),
        lambda seed: multi_tenant_stream(
            keyset,
            [TenantSpec(tenant=1, requests_per_ms=2.0)],
            duration_ms=40.0,
            seed=seed,
        ),
    ):
        one, two = make(13), make(13)
        np.testing.assert_array_equal(one.keys, two.keys)
        np.testing.assert_array_equal(one.arrival_ms, two.arrival_ms)
        assert not np.array_equal(make(13).keys, make(14).keys)


def test_shifting_hotspot_actually_migrates(keyset):
    stream = shifting_hotspot_stream(
        keyset, 3000, num_phases=3, hotspot_fraction=1.0, seed=2
    )
    sorted_keys = np.sort(keyset.keys)
    positions = np.searchsorted(sorted_keys, stream.keys)
    thirds = np.array_split(positions, 3)
    # The hotspot centre moves low -> high across the phases.
    assert thirds[0].mean() < thirds[1].mean() < thirds[2].mean()


def test_range_hammer_concentrates_and_mixes_negatives(keyset):
    stream = range_hammer_stream(
        keyset,
        2000,
        span_fraction=0.05,
        hammer_fraction=0.9,
        negative_fraction=0.1,
        seed=4,
    )
    assert stream.keys.dtype == np.int64
    negative = stream.keys < 0
    assert 0.05 < negative.mean() < 0.2
    sorted_keys = np.sort(keyset.keys)
    threshold = sorted_keys[int(0.95 * sorted_keys.shape[0])]
    hammered = stream.keys[~negative].astype(np.uint64) >= threshold
    assert hammered.mean() > 0.8


def test_multi_tenant_stream_labels_and_bursts(keyset):
    flood = TenantSpec(
        tenant=1,
        requests_per_ms=4.0,
        keyspace=(0.0, 0.25),
        burst_on_ms=5.0,
        burst_off_ms=5.0,
    )
    steady = TenantSpec(tenant=2, requests_per_ms=1.0)
    stream = multi_tenant_stream(keyset, [flood, steady], duration_ms=80.0, seed=9)
    assert stream.tenant_ids is not None
    assert set(np.unique(stream.tenant_ids)) == {1, 2}
    assert np.all(np.diff(stream.arrival_ms) >= 0)
    assert stream.arrival_ms.max() < 80.0
    # The bursting tenant only sends during the on-window of each cycle.
    flood_arrivals = stream.arrival_ms[stream.tenant_ids == 1]
    assert np.all((flood_arrivals % 10.0) < 5.0)
    # Tenant 1 only touches its keyspace slice.
    sorted_keys = np.sort(keyset.keys)
    boundary = sorted_keys[int(0.25 * sorted_keys.shape[0])]
    assert np.all(stream.keys[stream.tenant_ids == 1] <= boundary)
    with pytest.raises(ValueError, match="duplicate"):
        multi_tenant_stream(keyset, [flood, flood], duration_ms=10.0, seed=9)
