"""Tests for the replication layer: balancing, quorum, failover, resync."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ground_truth_point, ground_truth_range
from repro.bench.experiments import availability
from repro.bench.harness import cgrxu_factory, sorted_array_factory
from repro.serve import (
    DOWN,
    HEALTHY,
    RECOVERING,
    FailureEvent,
    FailureInjector,
    MaintenanceWorker,
    ReplicaGroup,
    ReplicatedShardRouter,
    ReplicationConfig,
    ServeConfig,
    ShardRouter,
    ShardedIndex,
    SimulatedClock,
)
from repro.workloads.failures import failure_schedule
from repro.workloads.keygen import generate_keys
from repro.workloads.lookups import uniform_lookups
from repro.workloads.requests import zipf_request_stream


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=61)


def make_group(keyset, factory=None, **config_kwargs):
    config = ReplicationConfig(**{"replication_factor": 3, **config_kwargs})
    return ReplicaGroup(
        shard_id=0,
        keys=keyset.keys,
        row_ids=keyset.row_ids,
        factory=factory or sorted_array_factory(),
        config=config,
        key_bits=32,
    )


# --------------------------------------------------------------------------
# Read balancing
# --------------------------------------------------------------------------


def test_round_robin_cycles_replicas(keyset):
    group = make_group(keyset, read_policy="round_robin")
    lookups = keyset.keys[:16]
    for _ in range(6):
        group.point_lookup_batch(lookups)
    loads = group.replica_loads()
    assert loads.tolist() == [2 * 16, 2 * 16, 2 * 16]


def test_least_loaded_avoids_the_busy_replica(keyset):
    group = make_group(keyset, read_policy="least_loaded")
    group.replicas[0].busy_ms = 100.0  # pretend replica 0 already did work
    for _ in range(4):
        group.point_lookup_batch(keyset.keys[:8])
    assert group.replicas[0].reads_served == 0
    assert group.replicas[1].reads_served > 0 and group.replicas[2].reads_served > 0


def test_least_loaded_penalises_slow_replicas(keyset):
    group = make_group(keyset, read_policy="least_loaded")
    for _ in range(3):  # everyone serves once, accumulating equal busy time
        group.point_lookup_batch(keyset.keys[:8])
    group.set_slow(0, 100.0)
    before = group.replicas[0].reads_served
    for _ in range(6):
        group.point_lookup_batch(keyset.keys[:8])
    assert group.replicas[0].reads_served == before


def test_reads_answer_like_ground_truth_regardless_of_replica(keyset):
    group = make_group(keyset)
    lookups = uniform_lookups(keyset, 64, seed=3)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    for _ in range(3):  # each call hits a different replica
        result = group.point_lookup_batch(lookups)
        np.testing.assert_array_equal(result.row_ids, agg)
        np.testing.assert_array_equal(result.match_counts, counts)


def test_range_reads_are_balanced_too(keyset):
    group = make_group(keyset)
    sorted_keys = np.sort(keyset.keys)
    low, high = int(sorted_keys[10]), int(sorted_keys[50])
    result = group.range_lookup_batch(np.asarray([low]), np.asarray([high]))
    expected = ground_truth_range(keyset.keys, keyset.row_ids, low, high)
    np.testing.assert_array_equal(np.sort(result.row_ids[0]), np.sort(expected))
    assert sum(group.replica_loads()) == 1


# --------------------------------------------------------------------------
# Write fan-out, quorum and the apply log
# --------------------------------------------------------------------------


def test_write_fans_out_and_acknowledges_quorum(keyset):
    group = make_group(keyset)
    new_key = np.asarray([1 << 30], dtype=np.uint32)
    update = group.update_batch(insert_keys=new_key, insert_row_ids=np.asarray([7], dtype=np.uint32))
    assert update.inserted == 1
    assert group.counters["writes"] == 1
    assert group.counters["write_acks"] == 3  # every up replica applied
    assert "quorum_failures" not in group.counters
    assert all(replica.applied_lsn == group.lsn for replica in group.replicas)
    # Every replica answers the new key.
    for _ in range(3):
        result = group.point_lookup_batch(new_key)
        np.testing.assert_array_equal(result.row_ids, [7])


def test_write_below_quorum_is_counted(keyset):
    group = make_group(keyset)
    group.crash(0, now_ms=0.0)
    group.crash(1, now_ms=0.0)
    group.update_batch(insert_keys=np.asarray([5], dtype=np.uint32))
    assert group.counters["quorum_failures"] == 1
    assert group.counters["write_acks"] == 1


def test_down_replica_misses_writes_and_lags(keyset):
    group = make_group(keyset, factory=cgrxu_factory(128))
    group.crash(2, now_ms=1.0)
    group.update_batch(insert_keys=np.asarray([11], dtype=np.uint32))
    lagging = group.replica(2)
    assert lagging.applied_lsn == 0 and group.lsn == 1
    assert not lagging.available  # barred from reads until resync


@pytest.mark.parametrize("factory_name", ["cgrxu", "sorted_array"])
def test_resync_catches_up_and_answers_match(keyset, factory_name):
    """Log replay (native updates) and snapshot resync (rebuild fallback)
    both restore a lagging replica to byte-identical answers."""
    factory = cgrxu_factory(128) if factory_name == "cgrxu" else sorted_array_factory()
    group = make_group(keyset, factory=factory)
    group.crash(0, now_ms=1.0)
    base = 1 << 30  # clear of the keyset's dense prefix
    inserts = np.asarray([base + 77, base + 78, base + 79], dtype=np.uint32)
    rows = np.asarray([7001, 7002, 7003], dtype=np.uint32)
    group.update_batch(insert_keys=inserts, insert_row_ids=rows)
    group.update_batch(delete_keys=np.asarray([base + 78], dtype=np.uint32))
    group.end_outage(0, now_ms=2.0)
    assert group.replica(0).state == RECOVERING

    group.resync(group.replica(0), now_ms=3.0)
    assert group.replica(0).state == HEALTHY
    assert group.replica(0).applied_lsn == group.lsn
    expected_counter = (
        "resyncs_log_replay" if factory_name == "cgrxu" else "resyncs_snapshot"
    )
    assert group.counters[expected_counter] == 1

    probe = inserts
    answers = [group.point_lookup_batch(probe) for _ in range(3)]
    for result in answers[1:]:
        np.testing.assert_array_equal(result.row_ids, answers[0].row_ids)
        np.testing.assert_array_equal(result.match_counts, answers[0].match_counts)
    np.testing.assert_array_equal(answers[0].row_ids, [7001, -1, 7003])


def test_trimmed_log_forces_snapshot_resync(keyset):
    group = make_group(keyset, factory=cgrxu_factory(128), log_capacity=2)
    group.crash(0, now_ms=0.0)
    base = 1 << 30  # clear of the keyset's dense prefix
    for wave in range(4):  # more writes than the log retains
        group.update_batch(insert_keys=np.asarray([base + wave], dtype=np.uint32))
    group.end_outage(0, now_ms=1.0)
    group.resync(group.replica(0), now_ms=2.0)
    assert group.counters.get("resyncs_snapshot", 0) == 1
    assert "resyncs_log_replay" not in group.counters
    result = group.point_lookup_batch(np.asarray([base, base + 3], dtype=np.uint32))
    assert (result.match_counts == [1, 1]).all()


# --------------------------------------------------------------------------
# Failover and unavailability
# --------------------------------------------------------------------------


def test_transient_error_fails_over_to_another_replica(keyset):
    group = make_group(keyset)
    group.inject_transient(0, count=2)
    lookups = keyset.keys[:8]
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    for _ in range(4):  # round-robin would hit replica 0 twice
        result = group.point_lookup_batch(lookups)
        np.testing.assert_array_equal(result.row_ids, agg)
    assert group.counters["failovers"] == 2
    assert group.replica(0).pending_transient == 0


def test_failover_overhead_lands_in_lookup_time(keyset):
    group = make_group(keyset, failover_penalty_ms=0.5)
    baseline = group.lookup_time_ms(group.point_lookup_batch(keyset.keys[:8]))
    group.inject_transient(int(group.replicas[group._rr_cursor % 3].replica_id), count=1)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert group.lookup_time_ms(result) >= baseline + 0.5


def test_slow_replica_scales_lookup_time(keyset):
    group = make_group(keyset, read_policy="round_robin")
    result = group.point_lookup_batch(keyset.keys[:64])
    fast_ms = group.lookup_time_ms(result)
    for replica in group.replicas:
        group.set_slow(replica.replica_id, 8.0)
    slow = group.point_lookup_batch(keyset.keys[:64])
    assert group.lookup_time_ms(slow) == pytest.approx(8.0 * fast_ms)


def test_total_outage_triggers_emergency_restart_and_window(keyset):
    group = make_group(keyset, restart_penalty_ms=2.0)
    clock = group.clock
    clock.advance(10.0)
    for replica in group.replicas:
        group.crash(replica.replica_id, now_ms=10.0)
    clock.advance(14.0)
    lookups = keyset.keys[:8]
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    result = group.point_lookup_batch(lookups)  # must still answer correctly
    np.testing.assert_array_equal(result.row_ids, agg)
    np.testing.assert_array_equal(result.match_counts, counts)
    assert group.counters["emergency_restarts"] == 1
    assert len(group.unavailability_windows) == 1
    start, end = group.unavailability_windows[0]
    assert start == pytest.approx(10.0) and end >= 14.0
    assert group.unavailable_ms() >= 4.0


# --------------------------------------------------------------------------
# Membership: join / leave / rebalance
# --------------------------------------------------------------------------


def test_added_replica_serves_immediately(keyset):
    group = make_group(keyset, replication_factor=2)
    group.update_batch(insert_keys=np.asarray([123456], dtype=np.uint32))
    joined = group.add_replica()
    assert joined.available and joined.applied_lsn == group.lsn
    for _ in range(3):
        result = group.point_lookup_batch(np.asarray([123456], dtype=np.uint32))
        assert result.match_counts[0] == 1
    assert group.replica(joined.replica_id).reads_served > 0


def test_remove_replica_refuses_last_available(keyset):
    group = make_group(keyset, replication_factor=2)
    group.crash(0, now_ms=0.0)
    with pytest.raises(ValueError):
        group.remove_replica(1)
    group.remove_replica(0)  # removing the *down* replica is fine
    assert len(group.replicas) == 1


def test_router_rebalance_replicas(keyset):
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=2,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=2),
    )
    router.rebalance_replicas(4)
    assert all(len(group.replicas) == 4 for group in router.groups.values())
    router.rebalance_replicas(2)
    assert all(len(group.replicas) == 2 for group in router.groups.values())
    lookups = uniform_lookups(keyset, 64, seed=5)
    agg, counts = ground_truth_point(keyset.keys, keyset.row_ids, lookups)
    result = router.point_lookup_batch(lookups)
    np.testing.assert_array_equal(result.row_ids, agg)
    np.testing.assert_array_equal(result.match_counts, counts)


# --------------------------------------------------------------------------
# Replicated router behind the full deployment
# --------------------------------------------------------------------------


def test_replicated_router_matches_plain_router(keyset):
    plain = ShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner="range",
        key_bits=32,
    )
    replicated = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=4,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=3),
    )
    lookups = uniform_lookups(keyset, 128, seed=7)
    np.testing.assert_array_equal(
        plain.point_lookup_batch(lookups).row_ids,
        replicated.point_lookup_batch(lookups).row_ids,
    )
    update_keys = np.asarray([3, 99, 1 << 29], dtype=np.uint32)
    update_rows = np.asarray([1, 2, 3], dtype=np.uint32)
    plain.update_batch(insert_keys=update_keys, insert_row_ids=update_rows)
    replicated.update_batch(insert_keys=update_keys, insert_row_ids=update_rows)
    probe = np.concatenate([update_keys, lookups[:32]])
    plain_result = plain.point_lookup_batch(probe)
    replicated_result = replicated.point_lookup_batch(probe)
    np.testing.assert_array_equal(plain_result.row_ids, replicated_result.row_ids)
    np.testing.assert_array_equal(plain_result.match_counts, replicated_result.match_counts)


def test_maintenance_heals_degraded_replicated_shards(keyset):
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=cgrxu_factory(128),
        num_shards=2,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=2),
    )
    rng = np.random.default_rng(9)
    inserts = rng.integers(0, (1 << 32) - 1, size=4096, dtype=np.uint64).astype(np.uint32)
    router.update_batch(insert_keys=inserts)
    from repro.serve import MaintenancePolicy

    worker = MaintenanceWorker(router, policy=MaintenancePolicy(rebuild_threshold=0.25))
    assert max(worker.degradation_of(s) for s in range(2)) >= 0.25
    worker.run_cycle(now_ms=1.0)
    assert worker.rebuilds_performed >= 1
    assert max(worker.degradation_of(s) for s in range(2)) < 0.25
    # The reload kept the groups (and their replicas) in place.
    assert all(len(group.replicas) == 2 for group in router.groups.values())


def test_maintenance_resyncs_recovering_replicas(keyset):
    config = ServeConfig(
        num_shards=2, partitioner="range", key_bits=32, cache_capacity=0,
        replication_factor=2,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config)
    group = index.router.groups[0]
    group.crash(0, now_ms=0.0)
    index.update_batch(insert_keys=np.asarray([42], dtype=np.uint32))
    group.end_outage(0, now_ms=1.0)
    assert group.replica(0).state == RECOVERING
    executed = index.maintenance.run_cycle(now_ms=2.0)
    assert any(task.name == "resync_replicas" and task.status == "done" for task in executed)
    assert group.replica(0).state == HEALTHY
    assert index.maintenance.snapshot()["resyncs_performed"] >= 1


def test_failure_injector_replays_schedule_in_order(keyset):
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=1,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=2),
    )
    events = [
        FailureEvent(at_ms=5.0, kind="crash", shard_id=0, replica_id=0, duration_ms=3.0),
        FailureEvent(at_ms=6.0, kind="slow", shard_id=0, replica_id=1, duration_ms=2.0),
        FailureEvent(at_ms=9.0, kind="transient", shard_id=0, replica_id=1, error_count=2),
    ]
    injector = FailureInjector(router, events)
    group = router.groups[0]
    assert injector.poll(4.9) == []
    injector.poll(5.5)
    assert group.replica(0).state == DOWN
    injector.poll(7.0)
    assert group.replica(1).slow_factor == 4.0
    transitions = injector.poll(10.0)
    assert group.replica(0).state == RECOVERING  # outage ended at 8.0
    assert group.replica(1).slow_factor == 1.0  # slowdown ended at 8.0
    assert group.replica(1).pending_transient == 2
    assert [t for t in transitions if "outage over" in t[1]]
    assert injector.pending == 0


def test_overlapping_outages_do_not_revive_early(keyset):
    """A second crash during an outage must not let the first crash's end
    transition the replica to RECOVERING before the longer outage is over."""
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=1,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=2),
    )
    injector = FailureInjector(
        router,
        [
            FailureEvent(at_ms=0.0, kind="crash", shard_id=0, replica_id=0, duration_ms=10.0),
            FailureEvent(at_ms=5.0, kind="crash", shard_id=0, replica_id=0, duration_ms=2.0),
        ],
    )
    group = router.groups[0]
    injector.poll(8.0)  # the short crash ended at 7.0, the long one has not
    assert group.replica(0).state == DOWN
    injector.poll(10.0)
    assert group.replica(0).state == RECOVERING


def test_caller_provided_registry_receives_replication_telemetry(keyset):
    """serve_stream(metrics=...) must route failover/availability records to
    the passed registry, not split them off to the deployment's own."""
    from repro.serve import MetricsRegistry

    config = ServeConfig(
        num_shards=2, partitioner="range", key_bits=32, cache_capacity=0,
        max_batch_size=64, max_wait_ms=0.5, replication_factor=2,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(keyset, 256, zipf_coefficient=1.0, seed=23)
    index.inject_failures(
        [FailureEvent(at_ms=1.0, kind="transient", shard_id=0, replica_id=0, error_count=2)]
    )
    custom = MetricsRegistry(num_shards=2)
    returned = index.serve_stream(stream, metrics=custom)
    assert returned is custom
    assert custom.counters.get("failovers", 0) >= 1
    assert custom.replica_requests  # per-replica load landed here too
    assert index.metrics.counters.get("failovers", 0) == 0


def test_rebalance_updates_quorum_and_reported_factor(keyset):
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=2,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=3),
    )
    router.rebalance_replicas(5)
    snapshot = router.replication_snapshot()
    assert snapshot["replication_factor"] == 5
    assert snapshot["write_quorum"] == 3  # majority of 5, not of the old 3
    assert all(group.config.quorum == 3 for group in router.groups.values())


def test_open_unavailability_window_is_flushed_without_double_count(keyset):
    """Flushing an in-progress outage reports it to the registry incrementally
    and never double-counts once the window finally closes."""
    from repro.serve import MetricsRegistry

    group = make_group(keyset, replication_factor=2)
    registry = MetricsRegistry()
    group.metrics = registry
    group.clock.advance(10.0)
    group.crash(0, now_ms=10.0)
    group.crash(1, now_ms=10.0)

    group.clock.advance(15.0)
    group.flush_unavailability(15.0)  # end of a served stream, outage ongoing
    assert registry.unavailable_ms == pytest.approx(5.0)
    group.flush_unavailability(15.0)  # flushing twice adds nothing
    assert registry.unavailable_ms == pytest.approx(5.0)
    assert group.unavailable_ms() == pytest.approx(5.0)

    group.clock.advance(20.0)
    group.end_outage(0, now_ms=20.0)
    group.resync(group.replica(0), now_ms=20.0)  # closes the remainder
    assert registry.unavailable_ms == pytest.approx(10.0)
    assert group.unavailable_ms() == pytest.approx(10.0)


def test_stale_outage_end_after_restart_is_ignored(keyset):
    """An emergency restart during outage A supersedes it; A's scheduled end
    must not cut a later outage B short."""
    router = ReplicatedShardRouter(
        keyset.keys,
        keyset.row_ids,
        factory=sorted_array_factory(),
        num_shards=1,
        partitioner="range",
        key_bits=32,
        replication=ReplicationConfig(replication_factor=1, restart_penalty_ms=0.5),
    )
    group = router.groups[0]
    injector = FailureInjector(
        router,
        [
            FailureEvent(at_ms=0.0, kind="crash", shard_id=0, replica_id=0, duration_ms=10.0),
            FailureEvent(at_ms=5.0, kind="crash", shard_id=0, replica_id=0, duration_ms=20.0),
        ],
    )
    injector.poll(1.0)
    # Reading the single-replica shard at t=2 forces an emergency restart,
    # superseding outage A (its end at t=10 is now stale).
    group.point_lookup_batch(keyset.keys[:4])
    assert group.replica(0).state == HEALTHY
    injector.poll(12.0)  # outage B started at 5; stale end of A fires at 10
    assert group.replica(0).state == DOWN  # B runs until t=25
    injector.poll(26.0)
    assert group.replica(0).state == RECOVERING


def test_overlapping_shard_outages_are_union_merged():
    from repro.serve import MetricsRegistry

    registry = MetricsRegistry()
    registry.record_request(1.0, 0.0, 100.0)  # span 100ms
    registry.record_unavailability(10.0, 20.0)  # shard 0
    registry.record_unavailability(15.0, 25.0)  # shard 1, overlapping
    registry.record_unavailability(50.0, 55.0)
    assert registry.unavailable_ms == pytest.approx(20.0)  # union, not 25
    assert registry.availability == pytest.approx(0.8)


def test_empty_replica_group_is_a_benign_no_op():
    group = ReplicaGroup(
        0,
        np.empty(0, dtype=np.uint32),
        np.empty(0, dtype=np.uint32),
        factory=sorted_array_factory(),
        config=ReplicationConfig(replication_factor=2),
        key_bits=32,
    )
    assert group.build_stats == [] and len(group) == 0
    result = group.point_lookup_batch(np.asarray([1, 2], dtype=np.uint32))
    np.testing.assert_array_equal(result.match_counts, [0, 0])
    # No replica served it: no failover overhead, no slowdown charged.
    assert group.lookup_time_ms(result) == pytest.approx(
        group.cost_model.kernel_time_ms(result.stats)
    )


def test_empty_group_reads_do_not_recharge_stale_overhead(keyset):
    group = make_group(keyset, restart_penalty_ms=5.0)
    for replica in group.replicas:
        group.crash(replica.replica_id, now_ms=1.0)
    group.point_lookup_batch(keyset.keys[:2])  # emergency restart: 5ms charged
    assert group.last_overhead_ms == pytest.approx(5.0)
    # Wipe the group empty; the short-circuit path must reset the charge.
    group.update_batch(delete_keys=group.keys.copy())
    result = group.point_lookup_batch(np.asarray([1], dtype=np.uint32))
    assert group.last_overhead_ms == 0.0
    assert group.lookup_time_ms(result) == pytest.approx(
        group.cost_model.kernel_time_ms(result.stats)
    )


def test_overlapping_slowdowns_hold_the_worst_active_factor(keyset):
    group = make_group(keyset)
    group.set_slow(0, 4.0)
    group.set_slow(0, 8.0)  # overlapping, worse
    assert group.replica(0).slow_factor == 8.0
    group.clear_slow(0, 4.0)  # the weaker one expires first
    assert group.replica(0).slow_factor == 8.0
    group.clear_slow(0, 8.0)
    assert group.replica(0).slow_factor == 1.0
    # And the other way round: the worse one expiring reveals the weaker.
    group.set_slow(0, 8.0)
    group.set_slow(0, 2.0)
    group.clear_slow(0, 8.0)
    assert group.replica(0).slow_factor == 2.0
    group.clear_slow(0, 2.0)
    assert group.replica(0).slow_factor == 1.0


def test_restart_clears_faults_injected_against_the_old_process(keyset):
    """A resynced replica is a fresh process: stale slowdowns and queued
    transient errors from before the restart must not fire against it."""
    group = make_group(keyset)
    group.set_slow(1, 16.0)
    group.inject_transient(1, count=5)
    group.crash(1, now_ms=1.0)
    group.end_outage(1, now_ms=2.0)
    group.resync(group.replica(1), now_ms=3.0)
    replica = group.replica(1)
    assert replica.slow_factor == 1.0 and not replica.active_slowdowns
    assert replica.pending_transient == 0
    before = group.counters.get("failovers", 0)
    for _ in range(3):
        group.point_lookup_batch(keyset.keys[:4])
    assert group.counters.get("failovers", 0) == before


def test_rearming_failures_keeps_pending_outage_ends(keyset):
    """Replacing the failure schedule must not orphan the end of an outage
    the old schedule already applied — the replica would stay down forever."""
    config = ServeConfig(
        num_shards=1, partitioner="range", key_bits=32, cache_capacity=0,
        replication_factor=2,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    index.inject_failures(
        [FailureEvent(at_ms=1.0, kind="crash", shard_id=0, replica_id=0, duration_ms=5.0)]
    )
    index.failures.poll(2.0)  # replica 0 is now DOWN, end pending at t=6
    group = index.router.groups[0]
    assert group.replica(0).state == DOWN
    index.inject_failures([])  # re-arm with a fresh (empty) schedule
    index.failures.poll(7.0)
    assert group.replica(0).state == RECOVERING


def test_direct_calls_after_custom_registry_stream_report_to_own_metrics(keyset):
    """serve_stream(metrics=...) binds the caller's registry for the stream
    only; later direct calls report to the deployment's registry again."""
    from repro.serve import MetricsRegistry

    config = ServeConfig(
        num_shards=1, partitioner="range", key_bits=32, cache_capacity=0,
        max_batch_size=64, max_wait_ms=0.5, replication_factor=2,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(keyset, 64, zipf_coefficient=0.5, seed=31)
    temp = MetricsRegistry(num_shards=1)
    index.serve_stream(stream, metrics=temp)
    group = index.router.groups[0]
    group.inject_transient(0, count=1)
    index.point_lookup_batch(keyset.keys[:4])  # direct call fails over
    assert index.metrics.counters.get("failovers", 0) >= 1
    assert temp.counters.get("failovers", 0) == 0


def test_failure_schedule_is_seeded_and_bounded():
    events = failure_schedule(4, 3, duration_ms=50.0, seed=11)
    again = failure_schedule(4, 3, duration_ms=50.0, seed=11)
    assert events == again
    assert all(0.0 <= event.at_ms <= 50.0 for event in events)
    assert all(event.shard_id < 4 and event.replica_id < 3 for event in events)
    spared = failure_schedule(4, 3, duration_ms=50.0, spare_replica=0, seed=11)
    assert all(event.replica_id != 0 for event in spared if event.kind == "crash")


def test_served_stream_under_failures_matches_oracle(keyset):
    """The acceptance check in miniature: a replicated deployment under
    failure weather serves byte-identical answers to a single instance."""
    from repro.baselines.sorted_array import SortedArrayIndex

    config = ServeConfig(
        num_shards=4, partitioner="range", key_bits=32, cache_capacity=128,
        max_batch_size=64, max_wait_ms=0.5, replication_factor=3,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(
        keyset, 768, zipf_coefficient=1.1, requests_per_ms=48.0, miss_fraction=0.1, seed=17
    )
    index.inject_failures(
        failure_schedule(4, 3, duration_ms=stream.duration_ms, crashes_per_s=120.0,
                         transients_per_s=240.0, seed=19)
    )
    metrics = index.serve_stream(stream, record_answers=True)
    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)
    expected = oracle.point_lookup_batch(stream.keys.astype(np.uint32))
    row_agg, match_counts = index.last_answers
    assert row_agg.tobytes() == expected.row_ids.tobytes()
    assert match_counts.tobytes() == expected.match_counts.tobytes()
    snapshot = metrics.snapshot()
    assert snapshot["requests"] == 768
    assert snapshot.get("failovers", 0) >= 1
    assert "replica_skew" in snapshot


def test_unreplicated_deployment_rejects_failure_injection(keyset):
    config = ServeConfig(num_shards=2, partitioner="range", key_bits=32)
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    with pytest.raises(ValueError):
        index.inject_failures([])


def test_availability_experiment_produces_consistent_rows():
    result = availability(
        num_keys=1 << 10,
        num_requests=1 << 8,
        num_shards=2,
        replication_factors=(1, 2),
        read_policies=("round_robin",),
        num_update_waves=2,
    )
    assert result.name == "replication"
    panels = {row["panel"] for row in result.rows}
    assert panels == {"a_read_policies", "b_failover", "c_quorum_resync"}
    assert all(row["answers_identical"] for row in result.rows)
    failover_rows = [row for row in result.rows if row["panel"] == "b_failover"]
    assert all(row["availability"] <= 1.0 for row in failover_rows)
    assert result.to_json()  # serialisable for the BENCH snapshot
