"""Tests for the durable tier: backends, WAL, checkpoints, recovery.

Covers the `repro.store` package in isolation (byte-level WAL and
checkpoint behaviour, damage handling, idempotent replay) and wired into
the serving stack (log-before-ack, maintenance checkpoints, durable
replica restore, cold-start recovery to byte-identical state).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import FailureEvent, ServeConfig, ShardedIndex
from repro.bench.harness import cgrxu_factory
from repro.store import (
    Checkpoint,
    CheckpointStore,
    DeploymentStore,
    InMemoryBackend,
    LocalDirBackend,
    ShardWal,
    WalCorruption,
    decode_record,
    encode_record,
    replay_records,
)
from repro.workloads.failures import failure_schedule
from repro.workloads.keygen import generate_keys


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=61)


def entries(arrays) -> tuple:
    keys, rows = arrays
    order = np.lexsort((rows, keys))
    return keys[order].tobytes(), rows[order].tobytes()


def deployment_entries(served) -> tuple:
    # Replica groups hold the authoritative arrays; plain shards keep them
    # on the router shard (mirrors DeploymentStore.shard_durable_state).
    def arrays(shard):
        if shard.index is not None and hasattr(shard.index, "replicas"):
            return shard.index.keys, shard.index.row_ids
        return shard.keys, shard.row_ids

    parts = [arrays(shard) for shard in served.router.shards]
    keys = np.concatenate([part[0] for part in parts])
    rows = np.concatenate([part[1] for part in parts])
    return entries((keys, rows))


# --------------------------------------------------------------------------
# Storage backends
# --------------------------------------------------------------------------


def test_local_backend_roundtrip_and_listing(tmp_path):
    backend = LocalDirBackend(str(tmp_path))
    backend.put("a/b.bin", b"payload")
    assert backend.get("a/b.bin") == b"payload"
    assert backend.exists("a/b.bin")
    assert backend.size("a/b.bin") == len(b"payload")
    backend.put_json("meta.json", {"k": 1})
    assert backend.get_json("meta.json") == {"k": 1}
    assert backend.list("a/") == ["a/b.bin"]
    backend.delete("a/b.bin")
    assert not backend.exists("a/b.bin")


def test_local_backend_overwrite_is_atomic_replace(tmp_path):
    backend = LocalDirBackend(str(tmp_path), fsync=False)
    backend.put("x.bin", b"old")
    backend.put("x.bin", b"new")
    assert backend.get("x.bin") == b"new"
    # No temp-file debris left behind, and listings never surface temps.
    assert backend.list("") == ["x.bin"]


def test_backend_rejects_escaping_names(tmp_path):
    backend = LocalDirBackend(str(tmp_path))
    with pytest.raises(ValueError):
        backend.put("../escape.bin", b"x")
    with pytest.raises(ValueError):
        backend.get("/absolute.bin")


def test_in_memory_backend_counters():
    backend = InMemoryBackend()
    backend.put("a", b"1234")
    backend.get("a")
    assert backend.counters["puts"] == 1
    assert backend.counters["gets"] == 1
    assert backend.counters["bytes_written"] == 4


# --------------------------------------------------------------------------
# WAL: framing, damage classification, truncation race
# --------------------------------------------------------------------------


def wal_with_records(backend, count=3, start_lsn=1):
    wal = ShardWal(backend, "shard-0000/wal")
    for offset in range(count):
        lsn = start_lsn + offset
        wal.append(
            lsn,
            np.asarray([lsn * 10], dtype=np.uint32),
            np.asarray([lsn], dtype=np.uint32),
            np.empty(0, dtype=np.uint32),
        )
    return wal


def test_wal_append_read_roundtrip():
    wal = wal_with_records(InMemoryBackend(), count=3)
    result = wal.read()
    assert [record.lsn for record in result.records] == [1, 2, 3]
    assert result.records[0].insert_keys.tolist() == [10]
    assert result.torn_truncated == 0 and result.corrupt_skipped == 0
    assert wal.max_lsn() == 3


def test_wal_record_checksum_detects_flips():
    record = encode_record(
        7,
        np.asarray([1, 2], dtype=np.uint32),
        np.asarray([3, 4], dtype=np.uint32),
        np.asarray([5], dtype=np.uint32),
    )
    assert decode_record(record).lsn == 7
    flipped = bytearray(record)
    flipped[len(flipped) // 2] ^= 0xFF
    with pytest.raises(WalCorruption):
        decode_record(bytes(flipped))


def test_torn_final_record_is_truncated_not_fatal():
    backend = InMemoryBackend()
    wal = wal_with_records(backend, count=2)
    # A torn write: the final record only half made it to the device.
    whole = encode_record(
        3,
        np.asarray([30], dtype=np.uint32),
        np.asarray([3], dtype=np.uint32),
        np.empty(0, dtype=np.uint32),
    )
    backend.put(wal._name(3), whole[: len(whole) // 2])
    result = wal.read(truncate_torn=True)
    assert [record.lsn for record in result.records] == [1, 2]
    assert result.torn_truncated == 1
    assert result.corrupt_skipped == 0
    # The debris is gone: the next read is clean.
    again = wal.read()
    assert again.torn_truncated == 0
    assert [record.lsn for record in again.records] == [1, 2]


def test_corrupt_record_before_valid_tail_is_skipped_and_counted():
    backend = InMemoryBackend()
    wal = wal_with_records(backend, count=3)
    payload = bytearray(backend.get(wal._name(2)))
    payload[-1] ^= 0xFF
    backend.put(wal._name(2), bytes(payload))
    result = wal.read()
    # Record 3 is valid after the damage, so record 2 is corruption (not a
    # torn tail) and is skipped, never deleted.
    assert [record.lsn for record in result.records] == [1, 3]
    assert result.corrupt_skipped == 1
    assert result.torn_truncated == 0
    assert backend.exists(wal._name(2))


def test_truncate_through_spares_racing_appends():
    wal = wal_with_records(InMemoryBackend(), count=2)
    # An append races the checkpoint: it lands before the truncation runs.
    wal.append(
        3,
        np.asarray([30], dtype=np.uint32),
        np.asarray([3], dtype=np.uint32),
        np.empty(0, dtype=np.uint32),
    )
    dropped = wal.truncate_through(2)
    assert dropped == 2
    result = wal.read()
    assert [record.lsn for record in result.records] == [3]


def test_replay_is_idempotent_by_lsn_guard():
    keys = np.asarray([1, 5], dtype=np.uint32)
    rows = np.asarray([10, 50], dtype=np.uint32)
    wal = wal_with_records(InMemoryBackend(), count=3)
    records = wal.read().records
    keys1, rows1, lsn1, applied1 = replay_records(keys, rows, records, applied_lsn=0)
    assert applied1 == 3 and lsn1 == 3
    # Replaying the same records again (e.g. a checkpoint that already
    # covers them plus a stale log) must change nothing.
    keys2, rows2, lsn2, applied2 = replay_records(keys1, rows1, records, applied_lsn=lsn1)
    assert applied2 == 0 and lsn2 == 3
    assert keys2.tobytes() == keys1.tobytes()
    assert rows2.tobytes() == rows1.tobytes()
    # A partial guard skips exactly the covered prefix.
    keys3, rows3, lsn3, applied3 = replay_records(keys, rows, records, applied_lsn=2)
    assert applied3 == 1 and lsn3 == 3


# --------------------------------------------------------------------------
# Checkpoints
# --------------------------------------------------------------------------


def test_checkpoint_roundtrip_and_pruning():
    store = CheckpointStore(InMemoryBackend(), "shard-0000/checkpoint", retain=2)
    for lsn in (5, 9, 12):
        store.save(
            np.asarray([lsn], dtype=np.uint32),
            np.asarray([lsn * 2], dtype=np.uint32),
            lsn=lsn,
            epoch=1,
        )
    latest = store.latest_valid()
    assert latest.lsn == 12 and latest.epoch == 1
    assert latest.keys.tolist() == [12]
    # Only `retain` generations survive.
    assert len(store.backend.list("shard-0000/checkpoint/")) == 2


def test_corrupt_checkpoint_falls_back_to_previous_generation():
    backend = InMemoryBackend()
    store = CheckpointStore(backend, "ck", retain=2)
    for lsn in (5, 9):
        store.save(
            np.asarray([lsn], dtype=np.uint32),
            np.asarray([lsn], dtype=np.uint32),
            lsn=lsn,
            epoch=0,
        )
    names = backend.list("ck/")
    newest = sorted(names)[-1]
    payload = bytearray(backend.get(newest))
    payload[len(payload) // 2] ^= 0xFF
    backend.put(newest, bytes(payload))
    latest = store.latest_valid()
    assert latest.lsn == 5
    assert store.corrupt_skipped == 1
    # The damaged generation is flagged for operators, not silently eaten.
    assert backend.exists(newest + ".error")


# --------------------------------------------------------------------------
# DeploymentStore: log, checkpoint, recover
# --------------------------------------------------------------------------


def test_deployment_store_log_checkpoint_recover_roundtrip():
    store = DeploymentStore(InMemoryBackend(), key_bits=32)
    keys = np.asarray([2, 4, 6], dtype=np.uint32)
    rows = np.asarray([20, 40, 60], dtype=np.uint32)
    store.checkpoint(0, keys, rows, lsn=0)
    store.log_batch(
        0,
        1,
        np.asarray([8], dtype=np.uint32),
        np.asarray([80], dtype=np.uint32),
        np.asarray([2], dtype=np.uint32),
    )
    assert store.wal_backlog(0) == 1
    recovery = store.recover_shard(0)
    assert recovery.lsn == 1
    assert recovery.replayed == 1
    assert recovery.keys.tolist() == [4, 6, 8]
    assert recovery.row_ids.tolist() == [40, 60, 80]
    assert store.counters["recoveries"] == 1
    assert store.counters["records_replayed"] == 1


def test_checkpoint_truncates_wal_behind_it():
    store = DeploymentStore(InMemoryBackend(), key_bits=32)
    empty = np.empty(0, dtype=np.uint32)
    for lsn in (1, 2, 3):
        store.log_batch(
            0, lsn, np.asarray([lsn], dtype=np.uint32),
            np.asarray([lsn], dtype=np.uint32), empty,
        )
    assert store.wal_backlog(0) == 3
    store.checkpoint(
        0, np.asarray([1, 2], dtype=np.uint32),
        np.asarray([1, 2], dtype=np.uint32), lsn=2,
    )
    # Records 1-2 are redundant and dropped; the racing record 3 survives.
    assert store.wal_backlog(0) == 1
    recovery = store.recover_shard(0)
    assert recovery.checkpoint_lsn == 2
    assert recovery.replayed == 1
    assert recovery.keys.tolist() == [1, 2, 3]


def test_recover_empty_shard_namespace_yields_empty_arrays():
    store = DeploymentStore(InMemoryBackend(), key_bits=32)
    recovery = store.recover_shard(7)
    assert recovery.num_entries == 0
    assert recovery.lsn == 0


# --------------------------------------------------------------------------
# Failure weather: seed stability
# --------------------------------------------------------------------------


def test_failure_schedule_seed_pinned():
    """Regression pin: a known seed must keep producing this exact schedule.

    Guards the documented draw-order contract — new fault classes must draw
    *after* the existing ones so existing seeds stay stable.
    """
    events = failure_schedule(3, 3, duration_ms=40.0, seed=23)
    pinned = [
        (2.55415, "transient", 0, 1),
        (5.145769, "crash", 1, 0),
        (8.720745, "slow", 0, 2),
    ]
    assert [
        (round(event.at_ms, 6), event.kind, event.shard_id, event.replica_id)
        for event in events
    ] == pinned


def test_process_kill_weather_preserves_classic_draws():
    base = failure_schedule(3, 3, duration_ms=40.0, seed=23)
    with_kills = failure_schedule(
        3, 3, duration_ms=40.0, process_kills_per_s=50.0, seed=23
    )
    classic = [event for event in with_kills if event.kind != "process_kill"]
    assert classic == base
    kills = [event for event in with_kills if event.kind == "process_kill"]
    assert [
        (round(event.at_ms, 6), event.shard_id, event.replica_id)
        for event in kills
    ] == [(0.728694, 0, 0), (26.170286, 1, 0), (29.708178, 2, 0)]


def test_process_kill_weather_spares_the_spare():
    events = failure_schedule(
        2, 3, duration_ms=100.0, process_kills_per_s=100.0, spare_replica=0, seed=5
    )
    kills = [event for event in events if event.kind == "process_kill"]
    assert kills and all(event.replica_id != 0 for event in kills)


# --------------------------------------------------------------------------
# Serving stack integration
# --------------------------------------------------------------------------


def durable_deployment(keyset, store_dir, **overrides):
    config = ServeConfig(
        **{
            "num_shards": 3,
            "partitioner": "range",
            "key_bits": 32,
            "cache_capacity": 0,
            "max_batch_size": 64,
            "max_wait_ms": 0.5,
            "replication_factor": 3,
            "store_dir": str(store_dir),
            "checkpoint_wal_records": 4,
            **overrides,
        }
    )
    return ShardedIndex(
        keyset.keys, keyset.row_ids, factory=cgrxu_factory(128), config=config
    )


def apply_waves(served, keyset, num_waves=4, seed=29):
    rng = np.random.default_rng(seed)
    keys = keyset.keys.copy()
    rows = keyset.row_ids.copy()
    next_row = int(rows.max()) + 1
    from repro.serve.router import apply_update_to_entries

    for _ in range(num_waves):
        inserts = rng.integers(0, (1 << 32) - 1, size=64, dtype=np.uint64).astype(
            np.uint32
        )
        insert_rows = np.arange(next_row, next_row + 64, dtype=np.uint32)
        deletes = rng.choice(keys, size=16, replace=False)
        next_row += 64
        served.update_batch(
            insert_keys=inserts, insert_row_ids=insert_rows, delete_keys=deletes
        )
        keys, rows, _ = apply_update_to_entries(keys, rows, inserts, insert_rows, deletes)
    return keys, rows


def test_every_acked_write_hits_the_wal_before_return(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    before = served.store.counters["wal_appends"]
    served.update_batch(
        insert_keys=np.asarray([123456789], dtype=np.uint32),
        insert_row_ids=np.asarray([1], dtype=np.uint32),
    )
    assert served.store.counters["wal_appends"] > before


def test_maintenance_takes_checkpoints_past_the_backlog_threshold(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    apply_waves(served, keyset, num_waves=5)
    served.maintenance.run_cycle(1.0)
    assert served.maintenance.checkpoints_performed >= 1
    assert served.store.counters["checkpoints"] > 3  # attach rebase + periodic


def test_process_killed_replica_restores_from_durable_store(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    expected = apply_waves(served, keyset, num_waves=3)
    now = served.clock.now_ms
    injector = served.inject_failures(
        [
            FailureEvent(
                at_ms=now, kind="process_kill", shard_id=s, replica_id=1,
                duration_ms=1.0,
            )
            for s in range(3)
        ]
    )
    injector.poll(now)
    # The killed replicas lost their in-memory state outright.
    for group in served.router.groups.values():
        assert group.replicas[1].index is None
    injector.poll(now + 2.0)
    served.maintenance.run_cycle(now + 2.0)
    replication = served.replication_snapshot()
    assert replication["process_kills"] == 3
    assert replication["resyncs_durable"] == 3
    for group in served.router.groups.values():
        assert group.replicas[1].index is not None
    assert deployment_entries(served) == entries(expected)


def test_cold_start_recovers_byte_identical_state(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    expected = apply_waves(served, keyset, num_waves=4)
    probe = keyset.keys[:256]
    answers = served.point_lookup_batch(probe)
    # The process exits; a fresh store over the same directory recovers.
    store = DeploymentStore(LocalDirBackend(str(tmp_path)), key_bits=32)
    recovered = ShardedIndex.cold_start(store, factory=cgrxu_factory(128))
    assert recovered.last_recovery["entries_recovered"] == expected[0].shape[0]
    assert deployment_entries(recovered) == entries(expected)
    after = recovered.point_lookup_batch(probe)
    assert after.row_ids.tobytes() == answers.row_ids.tobytes()
    assert after.match_counts.tobytes() == answers.match_counts.tobytes()
    # The recovered deployment is re-armed: it keeps acking writes durably.
    assert recovered.store is not None
    recovered.update_batch(
        insert_keys=np.asarray([42], dtype=np.uint32),
        insert_row_ids=np.asarray([4242], dtype=np.uint32),
    )
    assert recovered.store.counters["wal_appends"] >= 1


def test_cold_start_truncates_torn_tail_and_counts_it(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    expected = apply_waves(served, keyset, num_waves=2)
    store = DeploymentStore(LocalDirBackend(str(tmp_path)), key_bits=32)
    wal = store.wal(1)
    torn_lsn = wal.max_lsn() + 1
    record = encode_record(
        torn_lsn,
        np.asarray([7], dtype=np.uint32),
        np.asarray([1], dtype=np.uint32),
        np.empty(0, dtype=np.uint32),
    )
    store.backend.put(wal._name(torn_lsn), record[: len(record) // 2])
    recovered = ShardedIndex.cold_start(store, factory=cgrxu_factory(128))
    assert recovered.last_recovery["torn_truncated"] == 1
    assert deployment_entries(recovered) == entries(expected)


def test_reshard_rebases_the_store(keyset, tmp_path):
    # Unreplicated: replica groups do not support in-place resharding.
    served = durable_deployment(keyset, tmp_path, replication_factor=1)
    apply_waves(served, keyset, num_waves=2)
    shards_before = served.config.num_shards
    served.router.split_shard(0)
    served.store.checkpoint_deployment(served.router)
    manifest = served.store.read_manifest()
    assert manifest["num_shards"] == shards_before + 1
    # A cold start from the post-split store sees the new topology and the
    # same entries.
    state = deployment_entries(served)
    store = DeploymentStore(LocalDirBackend(str(tmp_path)), key_bits=32)
    recovered = ShardedIndex.cold_start(store, factory=cgrxu_factory(128))
    assert recovered.config.num_shards == shards_before + 1
    assert deployment_entries(recovered) == state


def test_metrics_surface_durability_counters(keyset, tmp_path):
    served = durable_deployment(keyset, tmp_path)
    apply_waves(served, keyset, num_waves=5)
    served.maintenance.run_cycle(1.0)
    snapshot = served.metrics.snapshot()
    assert snapshot.get("wal_appends", 0) > 0
    assert snapshot.get("wal_bytes", 0) > 0
    assert snapshot.get("checkpoints", 0) > 0


def test_experiment_listing_names_every_experiment():
    from repro.bench.experiments import ALL_EXPERIMENTS, list_experiments

    lines = list_experiments()
    assert len(lines) == len(ALL_EXPERIMENTS)
    assert any(line.startswith("durability") for line in lines)
    for line in lines:
        name, _, summary = line.partition("  ")
        assert name.strip() in ALL_EXPERIMENTS
        assert summary.strip()
