"""Parity suite for the vector batch execution engine.

The scalar paths are the reference oracle; every test here drives the same
workload through both engines and asserts **byte-identical results and
identical instrumentation counters** (``RayStats`` / ``KernelStats``),
including after update waves.  The wavefront traversal kernels are checked
directly against the per-ray scalar traversal as well.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines.rx import RXIndex
from repro.baselines.sorted_array import SortedArrayIndex
from repro.core.config import CgRXConfig, CgRXuConfig
from repro.core.index import CgRXIndex
from repro.core.updatable import CgRXuIndex
from repro.rtx.bvh import BvhBuildConfig, build_bvh
from repro.rtx.geometry import Ray
from repro.rtx.scene import TriangleScene, VertexBuffer
from repro.rtx.traversal import RayStats, TraversalEngine
from repro.serve.router import ShardRouter
from repro.workloads.keygen import generate_keys
from repro.workloads.lookups import hit_miss_lookups, range_lookups, uniform_lookups
from repro.workloads.updates import update_waves


def assert_stats_identical(scalar, vector) -> None:
    """Every counter field (divergence and cache fractions included) matches."""
    left = dataclasses.asdict(scalar)
    right = dataclasses.asdict(vector)
    differing = {key: (left[key], right[key]) for key in left if left[key] != right[key]}
    assert not differing, f"counters diverged: {differing}"


def assert_point_identical(scalar, vector) -> None:
    assert scalar.row_ids.tobytes() == vector.row_ids.tobytes()
    assert scalar.match_counts.tobytes() == vector.match_counts.tobytes()
    assert_stats_identical(scalar.stats, vector.stats)


def assert_range_identical(scalar, vector) -> None:
    assert len(scalar.row_ids) == len(vector.row_ids)
    for left, right in zip(scalar.row_ids, vector.row_ids):
        assert left.dtype == right.dtype
        assert left.tobytes() == right.tobytes()
    assert_stats_identical(scalar.stats, vector.stats)


# --------------------------------------------------------------------------
# Wavefront traversal vs per-ray scalar traversal
# --------------------------------------------------------------------------


def build_engines(points, flipped=None, leaf_size=4):
    """Two identical engines so scalar and batch runs don't share stats."""
    engines = []
    for _ in range(2):
        buffer = VertexBuffer()
        flips = flipped or [False] * len(points)
        for slot, ((x, y, z), flip) in enumerate(zip(points, flips)):
            buffer.write_key_triangle(slot, float(x), float(y), float(z), flipped=flip)
        scene = TriangleScene.from_vertex_buffer(buffer)
        engines.append(TraversalEngine(build_bvh(scene, BvhBuildConfig(max_leaf_size=leaf_size))))
    return engines


@pytest.mark.parametrize("axis", [0, 1, 2])
def test_wavefront_axis_closest_matches_scalar(axis, rng):
    points = [tuple(point) for point in rng.integers(0, 25, size=(150, 3))]
    flips = list(rng.random(len(points)) < 0.3)
    scalar_engine, batch_engine = build_engines(points, flips)
    origins = rng.integers(0, 25, size=(96, 3)).astype(np.float64)
    origins[:, axis] -= 0.5
    tmax = np.where(rng.random(96) < 0.5, np.inf, rng.uniform(0.0, 30.0, 96))

    scalar_stats = RayStats()
    hits = []
    for origin, limit in zip(origins, tmax):
        local = RayStats()
        hits.append(scalar_engine.trace_axis_closest(axis, tuple(origin), float(limit), stats=local))
        scalar_stats.merge(local)
    batch_stats = RayStats()
    batch = batch_engine.trace_axis_closest_batch(axis, origins, tmax, stats=batch_stats)

    assert dataclasses.asdict(scalar_stats) == dataclasses.asdict(batch_stats)
    assert dataclasses.asdict(scalar_engine.stats) == dataclasses.asdict(batch_engine.stats)
    for position, record in enumerate(hits):
        assert bool(record) == bool(batch.hit[position])
        if record:
            assert record.primitive_index == batch.primitive_index[position]
            assert record.t == batch.t[position]
            assert record.front_face == bool(batch.front_face[position])
            assert np.array_equal(record.point, batch.point[position])


@pytest.mark.parametrize("axis", [0, 1, 2])
def test_wavefront_axis_all_matches_scalar(axis, rng):
    points = [tuple(point) for point in rng.integers(0, 12, size=(120, 3))]
    scalar_engine, batch_engine = build_engines(points)
    origins = rng.integers(0, 12, size=(64, 3)).astype(np.float64)
    origins[:, axis] -= 0.5
    tmax = np.full(64, np.inf)

    scalar_stats = RayStats()
    all_hits = []
    for origin in origins:
        local = RayStats()
        all_hits.append(scalar_engine.trace_axis_all(axis, tuple(origin), stats=local))
        scalar_stats.merge(local)
    batch_stats = RayStats()
    batch = batch_engine.trace_axis_all_batch(axis, origins, tmax, stats=batch_stats)

    assert dataclasses.asdict(scalar_stats) == dataclasses.asdict(batch_stats)
    offset = 0
    for position, hits in enumerate(all_hits):
        count = int(batch.hit_counts[position])
        assert len(hits) == count
        for index, record in enumerate(hits):
            assert record.primitive_index == batch.primitive_index[offset + index]
            assert record.t == batch.t[offset + index]
            assert record.front_face == bool(batch.front_face[offset + index])
        offset += count


def test_wavefront_general_closest_matches_scalar(rng):
    points = [tuple(point) for point in rng.integers(0, 15, size=(90, 3))]
    scalar_engine, batch_engine = build_engines(points, leaf_size=3)
    rays = []
    for _ in range(48):
        origin = rng.uniform(-1.0, 16.0, 3)
        direction = rng.normal(size=3)
        if rng.random() < 0.3:
            direction[int(rng.integers(0, 3))] = 0.0
        limit = float(np.inf if rng.random() < 0.7 else rng.uniform(0.0, 25.0))
        rays.append(Ray(origin=origin, direction=direction, tmax=limit))

    scalar_stats = RayStats()
    scalar_hits = []
    for ray in rays:
        local = RayStats()
        scalar_hits.append(scalar_engine.trace_closest(ray, local))
        scalar_stats.merge(local)
    batch_stats = RayStats()
    batch_hits = batch_engine.trace_closest_batch(rays, batch_stats)

    assert dataclasses.asdict(scalar_stats) == dataclasses.asdict(batch_stats)
    for scalar_record, batch_record in zip(scalar_hits, batch_hits):
        assert bool(scalar_record) == bool(batch_record)
        if scalar_record:
            assert scalar_record.primitive_index == batch_record.primitive_index
            assert scalar_record.t == batch_record.t
            assert scalar_record.front_face == batch_record.front_face
            assert np.array_equal(scalar_record.point, batch_record.point)


def test_wavefront_empty_scene_and_empty_batch():
    engine = TraversalEngine(build_bvh(TriangleScene.from_triangles([])))
    stats = RayStats()
    batch = engine.trace_axis_closest_batch(0, np.zeros((3, 3)), stats=stats)
    assert not batch.hit.any()
    assert stats.misses == 3 and stats.rays_cast == 3
    empty = engine.trace_axis_all_batch(1, np.zeros((0, 3)))
    assert empty.hit_counts.shape == (0,)


# --------------------------------------------------------------------------
# cgRXu / cgRX: both engines answer and count identically
# --------------------------------------------------------------------------


@pytest.mark.parametrize("key_bits", [32, 64])
@pytest.mark.parametrize("representation", ["naive", "optimized"])
def test_cgrxu_engines_identical_through_update_waves(key_bits, representation):
    keyset = generate_keys(3072, uniformity=0.6, key_bits=key_bits, seed=31)
    lookups = hit_miss_lookups(
        keyset, 768, miss_fraction=0.3, out_of_range_fraction=0.4, seed=32
    )
    lows, highs = range_lookups(keyset, count=96, expected_hits=12, seed=33)

    scalar = CgRXuIndex(
        keyset.keys,
        keyset.row_ids,
        CgRXuConfig(key_bits=key_bits, representation=representation, engine="scalar"),
    )
    vector = CgRXuIndex(
        keyset.keys,
        keyset.row_ids,
        CgRXuConfig(key_bits=key_bits, representation=representation, engine="vector"),
    )

    assert_point_identical(
        scalar.point_lookup_batch(lookups), vector.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), vector.range_lookup_batch(lows, highs)
    )

    for wave in update_waves(
        keyset, num_insert_waves=2, num_delete_waves=2, growth_factor=1.3, seed=34
    ):
        scalar_update = scalar.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        vector_update = vector.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        assert scalar_update.inserted == vector_update.inserted
        assert scalar_update.deleted == vector_update.deleted
        assert_stats_identical(scalar_update.stats, vector_update.stats)

    # Post-update state: answers, export, chain health and entry counts.
    assert_point_identical(
        scalar.point_lookup_batch(lookups), vector.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), vector.range_lookup_batch(lows, highs)
    )
    scalar_entries = scalar.export_entries()
    vector_entries = vector.export_entries()
    assert scalar_entries[0].tobytes() == vector_entries[0].tobytes()
    assert scalar_entries[1].tobytes() == vector_entries[1].tobytes()
    assert scalar.chain_statistics() == vector.chain_statistics()
    assert len(scalar) == len(vector)


def test_cgrxu_cached_length_matches_chain_walk():
    keyset = generate_keys(1024, uniformity=0.7, key_bits=32, seed=41)
    index = CgRXuIndex(keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32))
    assert len(index) == index._count_entries() == 1024
    for wave in update_waves(
        keyset, num_insert_waves=2, num_delete_waves=2, growth_factor=1.5, seed=42
    ):
        index.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        assert len(index) == index._count_entries()


def test_cgrxu_export_entries_sorted_and_complete():
    keyset = generate_keys(2048, uniformity=0.4, key_bits=32, seed=43)
    index = CgRXuIndex(keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32))
    keys, row_ids = index.export_entries()
    assert keys.shape[0] == row_ids.shape[0] == 2048
    assert np.all(np.diff(keys.astype(np.uint64)) >= 0)
    assert np.array_equal(np.sort(keys), np.sort(keyset.keys))


@pytest.mark.parametrize("key_bits", [32, 64])
def test_cgrx_engines_identical(key_bits):
    keyset = generate_keys(4096, uniformity=0.5, key_bits=key_bits, seed=51)
    lookups = hit_miss_lookups(
        keyset, 1024, miss_fraction=0.25, out_of_range_fraction=0.3, seed=52
    )
    lows, highs = range_lookups(keyset, count=64, expected_hits=8, seed=53)
    scalar = CgRXIndex(
        keyset.keys, keyset.row_ids, CgRXConfig(key_bits=key_bits, engine="scalar")
    )
    vector = CgRXIndex(
        keyset.keys, keyset.row_ids, CgRXConfig(key_bits=key_bits, engine="vector")
    )
    assert_point_identical(
        scalar.point_lookup_batch(lookups), vector.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), vector.range_lookup_batch(lows, highs)
    )


# --------------------------------------------------------------------------
# RX and the shard router
# --------------------------------------------------------------------------


@pytest.mark.parametrize("key_bits", [32, 64])
def test_rx_engines_identical(key_bits):
    keyset = generate_keys(2048, uniformity=0.6, key_bits=key_bits, seed=55)
    lookups = hit_miss_lookups(
        keyset, 512, miss_fraction=0.3, out_of_range_fraction=0.5, seed=56
    )
    scalar = RXIndex(keyset.keys, keyset.row_ids, key_bits=key_bits, engine="scalar")
    vector = RXIndex(keyset.keys, keyset.row_ids, key_bits=key_bits, engine="vector")
    assert_point_identical(
        scalar.point_lookup_batch(lookups), vector.point_lookup_batch(lookups)
    )


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_shard_router_scatter_engines_identical(partitioner, rng):
    keyset = generate_keys(2048, uniformity=0.5, key_bits=32, seed=57)

    def factory(shard_keyset, device):
        return SortedArrayIndex(
            shard_keyset.keys, shard_keyset.row_ids, key_bits=32, device=device
        )

    routers = {
        engine: ShardRouter(
            keyset.keys,
            keyset.row_ids,
            factory,
            num_shards=4,
            partitioner=partitioner,
            key_bits=32,
            engine=engine,
        )
        for engine in ("scalar", "vector")
    }
    lows = rng.integers(0, 1 << 31, size=128, dtype=np.uint64).astype(np.uint32)
    spans = rng.integers(0, 1 << 22, size=128, dtype=np.uint64)
    highs = np.minimum(lows.astype(np.uint64) + spans, (1 << 32) - 1).astype(np.uint32)
    scalar = routers["scalar"].range_lookup_batch(lows, highs)
    vector = routers["vector"].range_lookup_batch(lows, highs)
    assert_range_identical(scalar, vector)
    assert [call.shard_id for call in routers["scalar"].last_calls] == [
        call.shard_id for call in routers["vector"].last_calls
    ]
    lookups = uniform_lookups(keyset, 256, seed=58)
    assert_point_identical(
        routers["scalar"].point_lookup_batch(lookups),
        routers["vector"].point_lookup_batch(lookups),
    )


def test_representation_base_fallback_matches_wavefront_routing():
    """The base-class scalar-loop fallback agrees with the wavefront override."""
    from repro.core.representation import SceneRepresentation

    keyset = generate_keys(512, uniformity=0.6, key_bits=32, seed=59)
    index = CgRXuIndex(keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32))
    lookups = hit_miss_lookups(
        keyset, 128, miss_fraction=0.3, out_of_range_fraction=0.5, seed=60
    )
    fallback_stats = RayStats()
    fallback_buckets, fallback_nodes = SceneRepresentation.locate_bucket_batch(
        index.representation, lookups, fallback_stats
    )
    batch_stats = RayStats()
    batch_buckets, batch_nodes = index.representation.locate_bucket_batch(
        lookups, batch_stats
    )
    np.testing.assert_array_equal(fallback_buckets, batch_buckets)
    np.testing.assert_array_equal(fallback_nodes, batch_nodes)
    assert dataclasses.asdict(fallback_stats) == dataclasses.asdict(batch_stats)


def test_pipeline_launch_closest_engines_identical(rng):
    points = [tuple(point) for point in rng.integers(0, 10, size=(40, 3))]
    scalar_engine, batch_engine = build_engines(points)
    rays = [
        Ray(origin=rng.uniform(-1.0, 11.0, 3), direction=rng.normal(size=3))
        for _ in range(16)
    ]
    from repro.rtx.pipeline import RaytracingPipeline

    pipelines = []
    for engine in (scalar_engine, batch_engine):
        pipeline = RaytracingPipeline()
        pipeline._bvh = engine.bvh
        pipeline._engine = engine
        pipelines.append(pipeline)
    scalar_launch = pipelines[0].launch_closest(rays, engine="scalar")
    vector_launch = pipelines[1].launch_closest(rays, engine="vector")
    assert dataclasses.asdict(scalar_launch.stats) == dataclasses.asdict(vector_launch.stats)
    for scalar_record, vector_record in zip(scalar_launch.hits, vector_launch.hits):
        assert bool(scalar_record) == bool(vector_record)
        if scalar_record:
            assert scalar_record.primitive_index == vector_record.primitive_index
            assert scalar_record.t == vector_record.t


def test_engine_validation():
    with pytest.raises(ValueError):
        CgRXuConfig(engine="simd")
    with pytest.raises(ValueError):
        CgRXConfig(engine="")
    with pytest.raises(ValueError):
        RXIndex(np.arange(8, dtype=np.uint32), key_bits=32, engine="warp")
