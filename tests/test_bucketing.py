"""Tests for the bucketed key-rowID storage and the bucket-search cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bucket_search import BucketSearchModel
from repro.core.bucketing import BucketedKeys
from repro.core.config import BucketLayout, SearchStrategy


@pytest.fixture
def paper_buckets(paper_example_keys, paper_example_rowids):
    """The running example bucketed with size 3, as in Figure 4."""
    return BucketedKeys(paper_example_keys, paper_example_rowids, bucket_size=3, key_bytes=8)


class TestBucketGeometry:
    def test_sorting_happens_on_construction(self, paper_buckets):
        assert np.array_equal(paper_buckets.keys, np.sort(paper_buckets.keys))

    def test_num_buckets_rounds_up(self, paper_buckets):
        assert len(paper_buckets) == 13
        assert paper_buckets.num_buckets == 5

    def test_bucket_bounds(self, paper_buckets):
        assert paper_buckets.bucket_bounds(0) == (0, 3)
        assert paper_buckets.bucket_bounds(3) == (9, 12)
        assert paper_buckets.bucket_bounds(4) == (12, 13)  # partial last bucket
        with pytest.raises(IndexError):
            paper_buckets.bucket_bounds(5)

    def test_representatives_match_figure_4(self, paper_buckets):
        # Figure 4: representatives 5, 17, 19, (19), 22 for buckets 0..4.
        assert list(paper_buckets.representatives()) == [5, 17, 19, 19, 22]
        assert paper_buckets.min_representative == 5
        assert paper_buckets.max_representative == 22

    def test_representative_index_is_last_slot_of_bucket(self, paper_buckets):
        assert paper_buckets.representative_index(0) == 2
        assert paper_buckets.representative_index(4) == 12

    def test_bucket_of_position(self, paper_buckets):
        assert paper_buckets.bucket_of_position(0) == 0
        assert paper_buckets.bucket_of_position(11) == 3

    def test_presorted_input_skips_sort(self):
        keys = np.arange(10, dtype=np.uint64)
        bucketed = BucketedKeys(keys, np.arange(10, dtype=np.uint32), bucket_size=4, presorted=True)
        assert bucketed.sort_stats.total_bytes == 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            BucketedKeys(np.array([], dtype=np.uint64), np.array([], dtype=np.uint32), bucket_size=4)

    def test_invalid_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            BucketedKeys(np.arange(4, dtype=np.uint64), np.arange(4, dtype=np.uint32), bucket_size=0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BucketedKeys(np.arange(4, dtype=np.uint64), np.arange(5, dtype=np.uint32), bucket_size=2)

    def test_memory_footprint(self, paper_buckets):
        assert paper_buckets.memory_footprint().total_bytes == 13 * (8 + 4)


class TestScans:
    def test_point_scan_hit_in_bucket(self, paper_buckets):
        # Figure 4: key 2 lives in bucket 0 at rowID 3.
        result = paper_buckets.scan_point(0, 2)
        assert result.hit
        assert list(result.row_ids) == [3]
        assert result.aggregate() == 3

    def test_point_scan_miss_reports_entries_touched(self, paper_buckets):
        result = paper_buckets.scan_point(0, 3)
        assert not result.hit
        assert result.aggregate() == -1
        assert result.entries_scanned >= 1

    def test_point_scan_collects_duplicates_across_buckets(self, paper_buckets):
        # Key 19 occurs five times, spanning buckets 2 and 3 (Figure 6).
        result = paper_buckets.scan_point(2, 19)
        assert result.hit
        assert sorted(result.row_ids) == sorted([6, 9, 10, 4, 11])
        assert result.entries_scanned >= 5

    def test_range_scan_matches_bounds(self, paper_buckets):
        result = paper_buckets.scan_range(0, 4, 18)
        expected = {7, 1, 8, 2, 0, 12}  # rowIDs of keys 4,5,6,12,17,18
        assert set(int(r) for r in result.row_ids) == expected

    def test_range_scan_empty_result(self, paper_buckets):
        result = paper_buckets.scan_range(1, 13, 16)
        assert result.row_ids.size == 0

    def test_range_scan_rejects_inverted_bounds(self, paper_buckets):
        with pytest.raises(ValueError):
            paper_buckets.scan_range(0, 10, 5)

    def test_range_scan_starting_before_bucket_is_clamped(self, paper_buckets):
        # A scan for [0, 100] starting at bucket 2 only sees entries from
        # bucket 2 onwards (the identified bucket is where the scan starts).
        result = paper_buckets.scan_range(2, 0, 100)
        start, _ = paper_buckets.bucket_bounds(2)
        assert result.row_ids.size == len(paper_buckets) - start


class TestBucketSearchModel:
    def test_binary_probes_grow_with_bucket_size(self):
        model = BucketSearchModel(SearchStrategy.BINARY, BucketLayout.ROW, key_bytes=8)
        small = model.point_search(bucket_size=32, entries_scanned=32)
        large = model.point_search(bucket_size=65536, entries_scanned=65536)
        assert large.bytes_read > small.bytes_read

    def test_linear_cost_grows_with_entries_scanned(self):
        model = BucketSearchModel(SearchStrategy.LINEAR, BucketLayout.ROW, key_bytes=8)
        short = model.point_search(bucket_size=256, entries_scanned=4)
        long = model.point_search(bucket_size=256, entries_scanned=256)
        assert long.bytes_read > short.bytes_read

    def test_binary_beats_linear_for_large_buckets(self):
        binary = BucketSearchModel(SearchStrategy.BINARY, BucketLayout.ROW, key_bytes=8)
        linear = BucketSearchModel(SearchStrategy.LINEAR, BucketLayout.ROW, key_bytes=8)
        assert (
            binary.point_search(65536, 65536).bytes_read
            < linear.point_search(65536, 65536).bytes_read
        )

    def test_duplicate_overflow_adds_trailing_scan(self):
        model = BucketSearchModel(SearchStrategy.BINARY, BucketLayout.ROW, key_bytes=8)
        exact = model.point_search(bucket_size=32, entries_scanned=32)
        overflow = model.point_search(bucket_size=32, entries_scanned=96)
        assert overflow.bytes_read > exact.bytes_read

    def test_range_scan_cost_scales_with_entries(self):
        model = BucketSearchModel(key_bytes=4)
        assert model.range_scan(1024).bytes_read > model.range_scan(16).bytes_read

    def test_column_layout_probes_only_keys(self):
        row = BucketSearchModel(SearchStrategy.BINARY, BucketLayout.ROW, key_bytes=4)
        column = BucketSearchModel(SearchStrategy.BINARY, BucketLayout.COLUMN, key_bytes=4)
        assert column.point_search(32, 32).bytes_read <= row.point_search(32, 32).bytes_read

    def test_entry_bytes(self):
        model = BucketSearchModel(key_bytes=8, rowid_bytes=4)
        assert model.entry_bytes == 12
