"""Tests for the key mapping (key -> grid/scene coordinates)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.key_mapping import DEFAULT_Y_SCALE, DEFAULT_Z_SCALE, KeyMapping


class TestConstruction:
    def test_default_64bit_mapping_matches_paper(self):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        assert (mapping.x_bits, mapping.y_bits, mapping.z_bits) == (23, 23, 18)

    def test_scaled_mapping_uses_paper_constants(self):
        mapping = KeyMapping.for_key_bits(64, scaled=True)
        assert mapping.y_scale == DEFAULT_Y_SCALE == float(1 << 15)
        assert mapping.z_scale == DEFAULT_Z_SCALE == float(1 << 25)

    def test_32bit_mapping_lives_on_a_single_plane(self):
        mapping = KeyMapping.for_key_bits(32)
        assert mapping.single_plane
        assert mapping.z_bits == 0
        assert mapping.key_bits == 32

    def test_invalid_key_bits_rejected(self):
        with pytest.raises(ValueError):
            KeyMapping.for_key_bits(48)

    def test_dimension_limit_of_23_bits_enforced(self):
        with pytest.raises(ValueError):
            KeyMapping(x_bits=24)
        with pytest.raises(ValueError):
            KeyMapping(x_bits=23, y_bits=24)

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            KeyMapping(x_bits=8, y_bits=8, z_bits=8, y_scale=0.5)

    def test_example_mapping_matches_paper_figures(self):
        mapping = KeyMapping.example_mapping()
        # k -> (k[2:0], k[4:3], k[63:5]); key 4 sits at x=4, y=0 (Figure 2).
        assert mapping.key_to_grid(4) == (4, 0, 0)
        assert mapping.key_to_grid(17) == (1, 2, 0)
        assert mapping.key_to_grid(22) == (6, 2, 0)

    def test_describe_mentions_bits(self):
        text = KeyMapping.for_key_bits(64).describe()
        assert "23" in text and "18" in text


class TestCoordinateSlicing:
    def test_x_is_least_significant_bits(self):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        key = (5 << (23 + 23)) | (7 << 23) | 1234
        assert int(mapping.x_of(key)) == 1234
        assert int(mapping.y_of(key)) == 7
        assert int(mapping.z_of(key)) == 5

    def test_yz_identifies_rows(self):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        same_row_a = (3 << 23) | 10
        same_row_b = (3 << 23) | 500
        other_row = (4 << 23) | 10
        assert mapping.yz_of(same_row_a) == mapping.yz_of(same_row_b)
        assert mapping.yz_of(same_row_a) != mapping.yz_of(other_row)

    def test_vectorised_matches_scalar(self, rng):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        keys = rng.integers(0, 1 << 63, size=200, dtype=np.uint64)
        xs = mapping.x_of(keys)
        ys = mapping.y_of(keys)
        zs = mapping.z_of(keys)
        for index in (0, 17, 99, 199):
            assert int(xs[index]) == int(mapping.x_of(int(keys[index])))
            assert int(ys[index]) == int(mapping.y_of(int(keys[index])))
            assert int(zs[index]) == int(mapping.z_of(int(keys[index])))

    def test_grid_maxima(self):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        assert mapping.x_max == (1 << 23) - 1
        assert mapping.y_max == (1 << 23) - 1
        assert mapping.z_max == (1 << 18) - 1
        assert KeyMapping.for_key_bits(32).z_max == 0

    def test_grid_to_key_validates_ranges(self):
        mapping = KeyMapping.example_mapping()
        with pytest.raises(ValueError):
            mapping.grid_to_key(x=mapping.x_max + 1)
        with pytest.raises(ValueError):
            mapping.grid_to_key(x=0, y=mapping.y_max + 1)

    @settings(max_examples=80, deadline=None)
    @given(key=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_property_grid_roundtrip_is_lossless(self, key):
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        x, y, z = mapping.key_to_grid(key)
        assert mapping.grid_to_key(int(x), int(y), int(z)) == key

    @settings(max_examples=80, deadline=None)
    @given(a=st.integers(min_value=0, max_value=(1 << 64) - 1), b=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_property_key_order_matches_lexicographic_grid_order(self, a, b):
        """Larger keys are never 'behind' smaller keys in (z, y, x) order."""
        mapping = KeyMapping.for_key_bits(64, scaled=False)
        ax, ay, az = (int(v) for v in mapping.key_to_grid(a))
        bx, by, bz = (int(v) for v in mapping.key_to_grid(b))
        if a <= b:
            assert (az, ay, ax) <= (bz, by, bx)


class TestSceneCoordinates:
    def test_scaling_is_applied_to_scene_not_grid(self):
        mapping = KeyMapping.for_key_bits(64, scaled=True)
        key = (3 << 23) | 7
        assert int(mapping.y_of(key)) == 3
        x, y, z = mapping.key_to_scene(key)
        assert x == 7.0
        assert y == 3.0 * float(1 << 15)
        assert z == 0.0

    def test_scene_to_grid_roundtrip(self):
        mapping = KeyMapping.for_key_bits(64, scaled=True)
        assert mapping.scene_y_to_grid(5.0 * mapping.y_scale) == 5
        assert mapping.scene_z_to_grid(9.0 * mapping.z_scale) == 9

    def test_scaled_scene_coordinates_are_exact_in_float32(self):
        mapping = KeyMapping.for_key_bits(64, scaled=True)
        # Largest y grid coordinate: 23 significant bits shifted by 15.
        y_scene = float(mapping.y_max) * mapping.y_scale
        assert float(np.float32(y_scene)) == y_scene

    def test_grid_to_scene_handles_marker_coordinates(self):
        mapping = KeyMapping.for_key_bits(64, scaled=True)
        x, y, z = mapping.grid_to_scene(-1.0, -1.0, 3.0)
        assert x == -1.0
        assert y == -1.0 * mapping.y_scale
        assert z == 3.0 * mapping.z_scale
