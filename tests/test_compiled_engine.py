"""Parity and behaviour suite for the compiled hot-path tier.

The scalar paths remain the reference oracle.  Everything here drives the
same workloads through ``engine="compiled"`` and asserts **byte-identical
results and identical instrumentation counters**, exactly like the vector
suite — plus the compiled-tier-specific contracts: quantized AABBs rounded
conservatively outward, shard-local arenas rebuilt in place, graceful
degradation to the vector engine when no backend exists, and the
``RayBatch`` pre-stacked fast path of the wavefront tracer.

Backend handling: the suite runs against whatever backend the environment
resolves (numba when installed, otherwise the system C compiler).  Tests
that need a *specific* backend pin it with ``REPRO_COMPILED_BACKEND`` and
reset the module cache around themselves; numba-only tests importorskip.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import CgRXConfig, CgRXuConfig, resolve_engine
from repro.core.index import CgRXIndex
from repro.core.updatable import CgRXuIndex
from repro.rtx import compiled
from repro.rtx.bvh import BvhBuildConfig, build_bvh
from repro.rtx.geometry import Ray
from repro.rtx.scene import TriangleScene, VertexBuffer
from repro.rtx.traversal import RayStats, TraversalEngine
from repro.rtx.wavefront import RayBatch
from repro.workloads.keygen import generate_keys
from repro.workloads.lookups import hit_miss_lookups, range_lookups
from repro.workloads.updates import update_waves


def assert_stats_identical(scalar, other) -> None:
    left = dataclasses.asdict(scalar)
    right = dataclasses.asdict(other)
    differing = {key: (left[key], right[key]) for key in left if left[key] != right[key]}
    assert not differing, f"counters diverged: {differing}"


def assert_point_identical(scalar, other) -> None:
    assert scalar.row_ids.tobytes() == other.row_ids.tobytes()
    assert scalar.match_counts.tobytes() == other.match_counts.tobytes()
    assert_stats_identical(scalar.stats, other.stats)


def assert_range_identical(scalar, other) -> None:
    assert len(scalar.row_ids) == len(other.row_ids)
    for left, right in zip(scalar.row_ids, other.row_ids):
        assert left.dtype == right.dtype
        assert left.tobytes() == right.tobytes()
    assert_stats_identical(scalar.stats, other.stats)


@pytest.fixture
def pinned_backend(monkeypatch):
    """Pin the backend via env var and reset the module cache around the test."""

    def pin(name: str) -> None:
        monkeypatch.setenv("REPRO_COMPILED_BACKEND", name)
        compiled.reset_backend_cache()

    yield pin
    compiled.reset_backend_cache()


requires_backend = pytest.mark.skipif(
    compiled.available_backend() is None,
    reason="no compiled backend (numba or a C compiler) available",
)


# --------------------------------------------------------------------------
# Megakernel vs per-ray scalar traversal
# --------------------------------------------------------------------------


def build_engines(points, flipped=None, leaf_size=4):
    engines = []
    for _ in range(2):
        buffer = VertexBuffer()
        flips = flipped or [False] * len(points)
        for slot, ((x, y, z), flip) in enumerate(zip(points, flips)):
            buffer.write_key_triangle(slot, float(x), float(y), float(z), flipped=flip)
        scene = TriangleScene.from_vertex_buffer(buffer)
        engines.append(TraversalEngine(build_bvh(scene, BvhBuildConfig(max_leaf_size=leaf_size))))
    return engines


@requires_backend
@pytest.mark.parametrize("axis", [0, 1, 2])
def test_megakernel_axis_closest_matches_scalar(axis, rng):
    points = [tuple(point) for point in rng.integers(0, 25, size=(150, 3))]
    flips = list(rng.random(len(points)) < 0.3)
    scalar_engine, batch_engine = build_engines(points, flips)
    origins = rng.integers(0, 25, size=(96, 3)).astype(np.float64)
    origins[:, axis] -= 0.5
    tmax = np.where(rng.random(96) < 0.5, np.inf, rng.uniform(0.0, 30.0, 96))

    scalar_stats = RayStats()
    hits = []
    for origin, limit in zip(origins, tmax):
        local = RayStats()
        hits.append(scalar_engine.trace_axis_closest(axis, tuple(origin), float(limit), stats=local))
        scalar_stats.merge(local)
    batch_stats = RayStats()
    batch = batch_engine.trace_axis_closest_batch(
        axis, origins, tmax, stats=batch_stats, engine="compiled"
    )

    assert dataclasses.asdict(scalar_stats) == dataclasses.asdict(batch_stats)
    for position, record in enumerate(hits):
        assert bool(record) == bool(batch.hit[position])
        if record:
            assert record.primitive_index == batch.primitive_index[position]
            assert record.t == batch.t[position]
            assert record.front_face == bool(batch.front_face[position])
            assert np.array_equal(record.point, batch.point[position])


@requires_backend
def test_megakernel_empty_scene_falls_back_cleanly():
    engine = TraversalEngine(build_bvh(TriangleScene.from_triangles([])))
    stats = RayStats()
    batch = engine.trace_axis_closest_batch(0, np.zeros((3, 3)), stats=stats, engine="compiled")
    assert not batch.hit.any()
    assert stats.misses == 3 and stats.rays_cast == 3


def test_python_backend_kernels_match_scalar(pinned_backend, rng):
    """The un-jitted reference kernels themselves implement the oracle logic."""
    pin = pinned_backend
    pin("python")
    assert compiled.available_backend() == "python"
    points = [tuple(point) for point in rng.integers(0, 20, size=(60, 3))]
    scalar_engine, batch_engine = build_engines(points, leaf_size=3)
    origins = rng.integers(0, 20, size=(32, 3)).astype(np.float64)
    origins[:, 1] -= 0.5
    tmax = np.full(32, np.inf)

    scalar_stats = RayStats()
    hits = []
    for origin in origins:
        local = RayStats()
        hits.append(scalar_engine.trace_axis_closest(1, tuple(origin), stats=local))
        scalar_stats.merge(local)
    batch_stats = RayStats()
    batch = batch_engine.trace_axis_closest_batch(
        1, origins, tmax, stats=batch_stats, engine="compiled"
    )
    assert dataclasses.asdict(scalar_stats) == dataclasses.asdict(batch_stats)
    for position, record in enumerate(hits):
        assert bool(record) == bool(batch.hit[position])
        if record:
            assert record.t == batch.t[position]


def test_numba_backend_resolves_when_installed(pinned_backend):
    pytest.importorskip("numba")
    pinned_backend("numba")
    assert compiled.available_backend() == "numba"
    kernels = compiled.backend_kernels()
    assert kernels is not None and len(kernels) == 2


# --------------------------------------------------------------------------
# Quantized node tables: conservative by construction
# --------------------------------------------------------------------------


@requires_backend
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_quantized_tables_are_conservative(seed):
    """Dequantized bounds always contain the exact bounds (property test)."""
    rng = np.random.default_rng(seed)
    buffer = VertexBuffer()
    # Adversarial frames: huge coordinates, tiny extents, duplicates.
    scale = 10.0 ** rng.integers(-3, 6)
    points = rng.uniform(0.0, scale, size=(200, 3))
    points[::7] = points[0]
    for slot, (x, y, z) in enumerate(points):
        buffer.write_key_triangle(slot, float(x), float(y), float(z))
    bvh = build_bvh(TriangleScene.from_vertex_buffer(buffer), BvhBuildConfig(max_leaf_size=3))
    tables = compiled.CompiledBvhTables(bvh, compiled.Arena())
    assert tables.usable
    assert tables.verify_conservative(bvh)


def test_quantize_outward_degenerate_frame():
    """A single point (zero extent) quantizes without dividing by zero."""
    bounds = np.full((4, 3), 42.0)
    qlo, qhi, frame_min, scale = compiled._quantize_outward(bounds, bounds)
    lo = frame_min + qlo.astype(np.float64) * scale
    hi = frame_min + qhi.astype(np.float64) * scale
    assert np.all(lo <= bounds) and np.all(hi >= bounds)


# --------------------------------------------------------------------------
# Shard-local arenas
# --------------------------------------------------------------------------


def test_arena_rebuild_in_place():
    arena = compiled.Arena()
    arena.begin(1024)
    first = arena.alloc((16,), np.float64)
    capacity = arena.capacity_bytes
    assert capacity >= 1024 and arena.used_bytes == 128
    # Same-size epoch: no reallocation, same capacity, cursor reset.
    arena.begin(1024)
    second = arena.alloc((16,), np.float64)
    assert arena.capacity_bytes == capacity
    assert second.__array_interface__["data"][0] == first.__array_interface__["data"][0]
    # Larger epoch grows geometrically; smaller epochs never shrink.
    arena.begin(4 * capacity)
    assert arena.capacity_bytes >= 4 * capacity
    grown = arena.capacity_bytes
    arena.begin(64)
    assert arena.capacity_bytes == grown
    assert arena.rebuilds == 4


def test_arena_alloc_alignment_and_overflow():
    arena = compiled.Arena()
    arena.begin(256)
    base = arena._buffer.__array_interface__["data"][0]
    small = arena.alloc((3,), np.uint8)
    bigger = arena.alloc((4,), np.float32)
    assert (small.__array_interface__["data"][0] - base) % compiled.Arena.ALIGNMENT == 0
    assert (bigger.__array_interface__["data"][0] - base) % compiled.Arena.ALIGNMENT == 0
    with pytest.raises(ValueError):
        arena.alloc((1024,), np.float64)


@requires_backend
def test_index_arena_reused_across_update_epochs():
    keyset = generate_keys(2048, uniformity=0.6, key_bits=32, seed=61)
    index = CgRXuIndex(
        keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32, engine="compiled")
    )
    lookups = hit_miss_lookups(keyset, 256, miss_fraction=0.3, seed=62)
    index.point_lookup_batch(lookups)
    assert index.compiled_buffers_bytes() > 0
    chain_arena = index._compiled_arena
    before = chain_arena.capacity_bytes
    for wave in update_waves(keyset, num_insert_waves=1, num_delete_waves=1, seed=63):
        index.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        index.point_lookup_batch(lookups)
        # Identity is stable: epochs repack the same arena object.
        assert index._compiled_arena is chain_arena
    assert chain_arena.rebuilds >= 2
    assert chain_arena.capacity_bytes >= before


# --------------------------------------------------------------------------
# cgRX / cgRXu: compiled engine answers and counts identically
# --------------------------------------------------------------------------


@requires_backend
@pytest.mark.parametrize("key_bits", [32, 64])
@pytest.mark.parametrize("representation", ["naive", "optimized"])
def test_cgrxu_compiled_identical_through_update_waves(key_bits, representation):
    keyset = generate_keys(3072, uniformity=0.6, key_bits=key_bits, seed=31)
    lookups = hit_miss_lookups(
        keyset, 768, miss_fraction=0.3, out_of_range_fraction=0.4, seed=32
    )
    lows, highs = range_lookups(keyset, count=96, expected_hits=12, seed=33)

    scalar = CgRXuIndex(
        keyset.keys,
        keyset.row_ids,
        CgRXuConfig(key_bits=key_bits, representation=representation, engine="scalar"),
    )
    comp = CgRXuIndex(
        keyset.keys,
        keyset.row_ids,
        CgRXuConfig(key_bits=key_bits, representation=representation, engine="compiled"),
    )

    assert_point_identical(
        scalar.point_lookup_batch(lookups), comp.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), comp.range_lookup_batch(lows, highs)
    )

    for wave in update_waves(
        keyset, num_insert_waves=2, num_delete_waves=2, growth_factor=1.3, seed=34
    ):
        scalar_update = scalar.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        comp_update = comp.update_batch(
            insert_keys=wave.insert_keys if wave.insert_keys.size else None,
            insert_row_ids=wave.insert_row_ids if wave.insert_keys.size else None,
            delete_keys=wave.delete_keys if wave.delete_keys.size else None,
        )
        assert scalar_update.inserted == comp_update.inserted
        assert scalar_update.deleted == comp_update.deleted
        assert_stats_identical(scalar_update.stats, comp_update.stats)

    assert_point_identical(
        scalar.point_lookup_batch(lookups), comp.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), comp.range_lookup_batch(lows, highs)
    )
    scalar_entries = scalar.export_entries()
    comp_entries = comp.export_entries()
    assert scalar_entries[0].tobytes() == comp_entries[0].tobytes()
    assert scalar_entries[1].tobytes() == comp_entries[1].tobytes()


@requires_backend
@pytest.mark.parametrize("key_bits", [32, 64])
def test_cgrx_compiled_identical(key_bits):
    keyset = generate_keys(4096, uniformity=0.5, key_bits=key_bits, seed=51)
    lookups = hit_miss_lookups(
        keyset, 1024, miss_fraction=0.25, out_of_range_fraction=0.3, seed=52
    )
    lows, highs = range_lookups(keyset, count=64, expected_hits=8, seed=53)
    scalar = CgRXIndex(
        keyset.keys, keyset.row_ids, CgRXConfig(key_bits=key_bits, engine="scalar")
    )
    comp = CgRXIndex(
        keyset.keys, keyset.row_ids, CgRXConfig(key_bits=key_bits, engine="compiled")
    )
    assert_point_identical(
        scalar.point_lookup_batch(lookups), comp.point_lookup_batch(lookups)
    )
    assert_range_identical(
        scalar.range_lookup_batch(lows, highs), comp.range_lookup_batch(lows, highs)
    )


# --------------------------------------------------------------------------
# Degradation and configuration plumbing
# --------------------------------------------------------------------------


def test_resolve_engine_degrades_without_backend(pinned_backend):
    pinned_backend("none")
    assert compiled.available_backend() is None
    assert resolve_engine("compiled") == "vector"
    assert compiled.last_fallback_reason == "no_backend"
    assert resolve_engine("vector") == "vector"
    assert resolve_engine("scalar") == "scalar"


def test_degraded_compiled_index_matches_vector(pinned_backend):
    """No backend at all: engine="compiled" silently serves the vector path."""
    pinned_backend("none")
    keyset = generate_keys(1024, uniformity=0.5, key_bits=32, seed=71)
    lookups = hit_miss_lookups(keyset, 256, miss_fraction=0.3, seed=72)
    vector = CgRXuIndex(
        keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32, engine="vector")
    )
    degraded = CgRXuIndex(
        keyset.keys, keyset.row_ids, CgRXuConfig(key_bits=32, engine="compiled")
    )
    assert_point_identical(
        vector.point_lookup_batch(lookups), degraded.point_lookup_batch(lookups)
    )
    assert degraded.compiled_buffers_bytes() == 0


def test_degradation_records_telemetry(pinned_backend):
    from repro.obs.profile import disable_profiling, enable_profiling

    pinned_backend("none")
    profile = enable_profiling()
    try:
        assert resolve_engine("compiled") == "vector"
    finally:
        disable_profiling()
    gauges = profile.registry.labeled_values("compiled_engine_fallback")
    assert gauges == {'compiled_engine_fallback{reason="no_backend"}': 1.0}
    counters = profile.registry.labeled_values("compiled_engine_fallbacks_total")
    assert counters == {'compiled_engine_fallbacks_total{reason="no_backend"}': 1}


def test_engine_validation_accepts_compiled():
    assert CgRXConfig(engine="compiled").engine == "compiled"
    assert CgRXuConfig(engine="compiled").engine == "compiled"
    from repro.serve import ServeConfig

    assert ServeConfig(engine="compiled").engine == "compiled"
    with pytest.raises(ValueError):
        CgRXuConfig(engine="jit")


@requires_backend
def test_compiled_arena_reported_in_serve_footprint():
    from repro.bench.harness import cgrxu_factory
    from repro.serve import ServeConfig, ShardedIndex

    keyset = generate_keys(2048, uniformity=0.5, key_bits=32, seed=81)
    served = ShardedIndex(
        keyset.keys,
        keyset.row_ids,
        factory=cgrxu_factory(engine="compiled"),
        config=ServeConfig(num_shards=2, key_bits=32, engine="compiled"),
    )
    lookups = hit_miss_lookups(keyset, 256, miss_fraction=0.2, seed=82)
    served.point_lookup_batch(lookups)
    footprint = served.memory_footprint()
    arena_entries = {
        name: size
        for name, size in footprint.components.items()
        if "compiled_arena" in name
    }
    assert arena_entries and all(size > 0 for size in arena_entries.values())
    snapshot = served.maintenance.snapshot()
    assert snapshot["compiled_arena_bytes"] == sum(arena_entries.values())


# --------------------------------------------------------------------------
# RayBatch fast path of the wavefront tracer
# --------------------------------------------------------------------------


def test_ray_batch_matches_ray_objects(rng):
    points = [tuple(point) for point in rng.integers(0, 15, size=(90, 3))]
    object_engine, batch_engine = build_engines(points, leaf_size=3)
    rays = []
    for _ in range(48):
        origin = rng.uniform(-1.0, 16.0, 3)
        direction = rng.normal(size=3)
        limit = float(np.inf if rng.random() < 0.7 else rng.uniform(0.0, 25.0))
        rays.append(Ray(origin=origin, direction=direction, tmax=limit))
    batch = RayBatch.from_rays(rays)
    assert batch.num_rays == len(rays) == len(batch)

    object_stats = RayStats()
    object_hits = object_engine.trace_closest_batch(rays, object_stats)
    batch_stats = RayStats()
    batch_hits = batch_engine.trace_closest_batch(batch, batch_stats)

    assert dataclasses.asdict(object_stats) == dataclasses.asdict(batch_stats)
    for object_record, batch_record in zip(object_hits, batch_hits):
        assert bool(object_record) == bool(batch_record)
        if object_record:
            assert object_record.primitive_index == batch_record.primitive_index
            assert object_record.t == batch_record.t
            assert object_record.front_face == batch_record.front_face


def test_ray_batch_roundtrip_and_empty():
    empty = RayBatch.from_rays([])
    assert empty.num_rays == 0 and list(empty) == []
    rays = [Ray(origin=(1.0, 2.0, 3.0), direction=(0.0, 1.0, 0.0), tmax=5.0)]
    batch = RayBatch.from_rays(rays)
    restored = batch.ray(0)
    assert np.array_equal(restored.origin, np.asarray(rays[0].origin, dtype=np.float64))
    assert restored.tmax == 5.0
