"""Regression tests pinning ``cancel_opposing_updates`` ordering semantics.

Audit result (documented in Section IV terms): when one update batch inserts
and deletes the same key, each delete *instance* cancels exactly one insert
instance — the **earliest-surviving insert in stable batch order** — and the
**first delete instances** of that key are consumed.  Later duplicate inserts
therefore survive, and leftover deletes (more deletes than inserts) fall
through to pre-existing entries.

Two properties make this safe deployment-wide, and both are pinned here:

* the shard router cancels the *raw* (unsorted) batch before routing, while
  ``CgRXuIndex.update_batch`` radix-sorts its batch *before* cancelling — the
  device sort is stable (duplicates keep batch order), so both paths cancel
  the same instances;
* after cancellation the surviving insert and delete key sets are disjoint,
  so delete-before-insert application order cannot reintroduce divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import cancel_opposing_updates as base_cancel
from repro.core.updatable import CgRXuIndex, cancel_opposing_updates
from repro.gpu.sort import device_radix_sort
from repro.serve import ServeConfig, ShardedIndex
from repro.bench.harness import cgrxu_factory
from repro.workloads.keygen import KeySet


def test_core_updatable_reexports_the_shared_helper():
    # The cancellation semantics are defined once and shared: the name
    # imported via repro.core.updatable IS the baselines.base helper.
    assert cancel_opposing_updates is base_cancel


def test_delete_cancels_earliest_insert_in_batch_order():
    """Insert k->100 then k->200, delete one k: the EARLIEST insert dies."""
    insert_keys = np.asarray([7, 7], dtype=np.uint32)
    insert_rows = np.asarray([100, 200], dtype=np.uint32)
    delete_keys = np.asarray([7], dtype=np.uint32)
    kept_keys, kept_rows, kept_deletes = cancel_opposing_updates(
        insert_keys, insert_rows, delete_keys
    )
    np.testing.assert_array_equal(kept_keys, [7])
    np.testing.assert_array_equal(kept_rows, [200])  # the later insert survives
    assert kept_deletes.size == 0


def test_earliest_means_batch_order_even_when_keys_are_unsorted():
    """Stable tie-break: among duplicates, batch position decides, not value
    position — an unsorted batch cancels the same instances as a sorted one."""
    insert_keys = np.asarray([9, 7, 9, 7], dtype=np.uint32)
    insert_rows = np.asarray([1, 2, 3, 4], dtype=np.uint32)
    delete_keys = np.asarray([7, 9], dtype=np.uint32)
    kept_keys, kept_rows, kept_deletes = cancel_opposing_updates(
        insert_keys, insert_rows, delete_keys
    )
    # First 7 (row 2) and first 9 (row 1) are cancelled; rows 3 and 4 survive.
    np.testing.assert_array_equal(np.sort(kept_rows), [3, 4])
    np.testing.assert_array_equal(np.sort(kept_keys), [7, 9])
    assert kept_deletes.size == 0


def test_presorting_with_the_device_sort_cancels_the_same_instances():
    """cgRXu sorts before cancelling; the router cancels raw. Same survivors."""
    insert_keys = np.asarray([9, 7, 9, 7], dtype=np.uint32)
    insert_rows = np.asarray([1, 2, 3, 4], dtype=np.uint32)
    delete_keys = np.asarray([7, 9, 9], dtype=np.uint32)

    raw_keys, raw_rows, raw_deletes = cancel_opposing_updates(
        insert_keys, insert_rows, delete_keys
    )
    sorted_keys, sorted_rows, _ = device_radix_sort(insert_keys, insert_rows)
    pre_keys, pre_rows, pre_deletes = cancel_opposing_updates(
        sorted_keys, sorted_rows, delete_keys
    )
    np.testing.assert_array_equal(np.sort(raw_rows), np.sort(pre_rows))
    np.testing.assert_array_equal(np.sort(raw_keys), np.sort(pre_keys))
    np.testing.assert_array_equal(np.sort(raw_deletes), np.sort(pre_deletes))


def test_surviving_halves_are_disjoint():
    """Post-cancellation, no key appears in both halves (one side exhausts)."""
    rng = np.random.default_rng(5)
    insert_keys = rng.integers(0, 8, size=64, dtype=np.uint64).astype(np.uint32)
    insert_rows = np.arange(64, dtype=np.uint32)
    delete_keys = rng.integers(0, 8, size=48, dtype=np.uint64).astype(np.uint32)
    kept_keys, _, kept_deletes = cancel_opposing_updates(
        insert_keys, insert_rows, delete_keys
    )
    assert not np.intersect1d(kept_keys, kept_deletes).size


def test_excess_deletes_fall_through_to_existing_entries():
    """2 deletes vs 1 insert: one cancels, the leftover hits the old entry."""
    insert_keys = np.asarray([5], dtype=np.uint32)
    insert_rows = np.asarray([500], dtype=np.uint32)
    delete_keys = np.asarray([5, 5], dtype=np.uint32)
    kept_keys, kept_rows, kept_deletes = cancel_opposing_updates(
        insert_keys, insert_rows, delete_keys
    )
    assert kept_keys.size == 0
    np.testing.assert_array_equal(kept_deletes, [5])


def test_cgrxu_live_and_rebuilt_shard_agree_on_opposing_duplicates():
    """End to end: a batch inserting k twice and deleting k once must leave
    the same surviving row on the live cgRXu shard and after a rebuild from
    the authoritative arrays (the background-maintenance path)."""
    keys = np.arange(1, 65, dtype=np.uint32)
    rows = (keys + 1000).astype(np.uint32)
    config = ServeConfig(num_shards=1, partitioner="range", key_bits=32, cache_capacity=0)
    index = ShardedIndex(keys, rows, factory=cgrxu_factory(128), config=config)
    target = np.asarray([40], dtype=np.uint32)

    index.update_batch(
        insert_keys=np.asarray([40, 40], dtype=np.uint32),
        insert_row_ids=np.asarray([7777, 8888], dtype=np.uint32),
        delete_keys=target,
    )
    live = index.point_lookup_batch(target)
    index.router.rebuild_shard(0)
    rebuilt = index.point_lookup_batch(target)
    # The delete cancelled the earliest insert (7777); 1040 and 8888 remain.
    assert int(live.match_counts[0]) == int(rebuilt.match_counts[0]) == 2
    assert int(live.row_ids[0]) == int(rebuilt.row_ids[0]) == 1040 + 8888


def test_cgrxu_direct_update_matches_the_pinned_semantics():
    keys = np.arange(1, 65, dtype=np.uint32)
    rows = (keys + 1000).astype(np.uint32)
    index = cgrxu_factory(128)(
        KeySet(keys=keys, row_ids=rows, key_bits=32, description="pin")
    )
    update = index.update_batch(
        insert_keys=np.asarray([40, 40], dtype=np.uint32),
        insert_row_ids=np.asarray([7777, 8888], dtype=np.uint32),
        delete_keys=np.asarray([40], dtype=np.uint32),
    )
    # One insert and one delete cancelled: net one insert applied, no delete.
    assert (update.inserted, update.deleted) == (1, 0)
    result = index.point_lookup_batch(np.asarray([40], dtype=np.uint32))
    assert int(result.match_counts[0]) == 2
    assert int(result.row_ids[0]) == 1040 + 8888
