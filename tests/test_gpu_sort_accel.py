"""Tests for the device radix sort and acceleration-structure cost helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.accel import accel_build_stats, accel_refit_stats, triangle_generation_stats
from repro.gpu.sort import device_radix_sort, radix_sort_stats


class TestRadixSort:
    def test_sorts_keys(self, rng):
        keys = rng.integers(0, 1 << 40, size=1000, dtype=np.uint64)
        sorted_keys, _, _ = device_radix_sort(keys)
        assert np.array_equal(sorted_keys, np.sort(keys))

    def test_values_follow_keys(self, rng):
        keys = rng.integers(0, 1 << 20, size=500, dtype=np.uint32)
        values = np.arange(500, dtype=np.uint32)
        sorted_keys, sorted_values, _ = device_radix_sort(keys, values)
        # Every (key, value) pair of the input must still be paired up.
        original = set(zip(keys.tolist(), values.tolist()))
        assert set(zip(sorted_keys.tolist(), sorted_values.tolist())) == original

    def test_sort_is_stable_for_duplicates(self):
        keys = np.array([5, 3, 5, 3, 5], dtype=np.uint32)
        values = np.array([0, 1, 2, 3, 4], dtype=np.uint32)
        _, sorted_values, _ = device_radix_sort(keys, values)
        # Duplicates keep their original relative order (CUB radix sort is stable).
        assert list(sorted_values) == [1, 3, 0, 2, 4]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            device_radix_sort(np.arange(4), np.arange(5))

    def test_stats_scale_with_key_width(self):
        stats32 = radix_sort_stats(1 << 20, key_bytes=4)
        stats64 = radix_sort_stats(1 << 20, key_bytes=8)
        assert stats64.total_bytes > stats32.total_bytes
        assert stats64.launches > stats32.launches

    def test_sort_returns_stats_matching_dtype(self, rng):
        keys = rng.integers(0, 100, size=256, dtype=np.uint64)
        _, _, stats = device_radix_sort(keys, np.arange(256, dtype=np.uint32))
        assert stats.launches == 8  # 64-bit keys, 8 bits per pass
        assert stats.threads == 256

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=200)
    )
    def test_property_sorted_output_is_permutation(self, data):
        keys = np.array(data, dtype=np.uint64)
        sorted_keys, _, _ = device_radix_sort(keys)
        assert np.array_equal(np.sort(keys), sorted_keys)


class TestAccelCostHelpers:
    def test_build_cost_scales_with_triangles(self):
        small = accel_build_stats(1 << 10, output_bytes=1 << 15)
        large = accel_build_stats(1 << 20, output_bytes=1 << 25)
        assert large.total_bytes > small.total_bytes

    def test_refit_is_cheaper_than_build(self):
        build = accel_build_stats(1 << 20, output_bytes=1 << 25)
        refit = accel_refit_stats(1 << 20, structure_bytes=1 << 25)
        assert refit.total_bytes < build.total_bytes
        assert refit.compute_ops < build.compute_ops

    def test_triangle_generation_writes_triangle_bytes(self):
        stats = triangle_generation_stats(num_keys_read=1000, num_triangles_written=100)
        assert stats.bytes_written == 100 * 36
        assert stats.bytes_read == 1000 * 8
