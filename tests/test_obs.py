"""Tests for the observability layer: telemetry, tracing, attribution, profiling."""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.bench.experiments import observability
from repro.bench.harness import ExperimentResult, cgrxu_factory
from repro.obs import (
    Counter,
    LogBucketHistogram,
    PERCENTILE_RELATIVE_ERROR,
    Span,
    Tracer,
    TelemetryRegistry,
    critical_path_breakdown,
    disable_profiling,
    enable_profiling,
    format_breakdown,
    profiler,
)
from repro.serve.metrics import LatencyHistogram, MetricsRegistry
from repro.serve.sharded import ServeConfig, ShardedIndex
from repro.workloads.keygen import generate_keys
from repro.workloads.requests import zipf_request_stream


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=47)


def _strict_loads(text: str):
    """Parse rejecting NaN/Infinity literals (spec-compliant JSON only)."""

    def reject(constant):
        raise ValueError(f"non-strict JSON constant: {constant}")

    return json.loads(text, parse_constant=reject)


# --------------------------------------------------------------------------
# Telemetry instruments
# --------------------------------------------------------------------------


def test_counter_integer_increments_stay_int():
    counter = Counter()
    counter.inc()
    counter.inc(41)
    assert counter.value == 42 and isinstance(counter.value, int)
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_histogram_percentile_tracks_exact_oracle():
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=0.0, sigma=1.5, size=5000)
    bucketed = LogBucketHistogram()
    oracle = LatencyHistogram()
    bucketed.record_many(samples)
    oracle.record_many(samples)
    for q in (50.0, 90.0, 99.0):
        exact = oracle.percentile(q)
        approx = bucketed.percentile(q)
        # Geometric-midpoint representative: bounded relative error (the 2x
        # slack covers rank interpolation straddling a bucket edge).
        assert abs(approx - exact) / exact <= 2.0 * PERCENTILE_RELATIVE_ERROR
    # Exact side scalars are not approximated at all.
    assert bucketed.mean == pytest.approx(float(samples.mean()))
    assert bucketed.maximum == float(samples.max())
    assert bucketed.minimum == float(samples.min())


def test_histogram_record_many_matches_scalar_loop():
    rng = np.random.default_rng(11)
    samples = np.concatenate(
        [rng.lognormal(size=500), [0.0, -1.0, 1e12]]  # under/overflow buckets
    )
    bulk = LogBucketHistogram()
    looped = LogBucketHistogram()
    bulk.record_many(samples)
    for value in samples:
        looped.record(value)
    assert np.array_equal(bulk.bucket_counts, looped.bucket_counts)
    assert bulk.count == looped.count
    assert bulk.total == pytest.approx(looped.total)
    assert bulk.min == looped.min and bulk.max == looped.max
    bulk.record_many([])  # empty batch is a no-op
    assert bulk.count == looped.count


def test_histogram_merge_equals_bulk_and_rejects_mismatched_edges():
    rng = np.random.default_rng(13)
    left_samples = rng.lognormal(size=400)
    right_samples = rng.lognormal(size=600)
    left = LogBucketHistogram()
    right = LogBucketHistogram()
    both = LogBucketHistogram()
    left.record_many(left_samples)
    right.record_many(right_samples)
    both.record_many(np.concatenate([left_samples, right_samples]))
    left.merge(right)
    assert np.array_equal(left.bucket_counts, both.bucket_counts)
    assert left.count == both.count
    assert left.total == pytest.approx(both.total)
    for q in (50.0, 99.0):
        assert left.percentile(q) == both.percentile(q)
    other_layout = LogBucketHistogram(edges=np.array([1.0, 2.0, 4.0]))
    with pytest.raises(ValueError):
        left.merge(other_layout)


def test_empty_histogram_reduces_to_nan():
    histogram = LogBucketHistogram()
    assert math.isnan(histogram.percentile(50.0))
    assert math.isnan(histogram.mean)
    assert math.isnan(histogram.maximum)
    assert len(histogram) == 0


def test_registry_exposition_format():
    registry = TelemetryRegistry()
    registry.counter("reads_total", shard="0").inc(5)
    registry.gauge("cache_size").set(17.0)
    registry.histogram("latency_ms").record_many([0.5, 0.5, 2.0])
    text = registry.exposition()
    lines = text.strip().split("\n")
    assert "# TYPE reads_total counter" in lines
    assert "# TYPE cache_size gauge" in lines
    assert "# TYPE latency_ms histogram" in lines
    assert 'reads_total{shard="0"} 5' in lines
    assert "cache_size 17.0" in lines
    # Sparse cumulative buckets plus the mandatory +Inf/_sum/_count series.
    bucket_lines = [l for l in lines if l.startswith("latency_ms_bucket")]
    assert bucket_lines[-1] == 'latency_ms_bucket{le="+Inf"} 3'
    assert any('le="+Inf"' not in l for l in bucket_lines)
    assert "latency_ms_sum 3" in lines
    assert "latency_ms_count 3" in lines


def test_registry_maybe_sample_is_interval_gated():
    registry = TelemetryRegistry(sample_interval_ms=10.0)
    registry.counter("events").inc(3)
    assert registry.maybe_sample(0.0) is True
    assert registry.maybe_sample(4.0) is False
    registry.counter("events").inc(2)
    assert registry.maybe_sample(10.0) is True
    assert [point["t_ms"] for point in registry.series] == [0.0, 10.0]
    assert registry.series[0]["values"]["events"] == 3
    assert registry.series[1]["values"]["events"] == 5
    # Unarmed registries never sample through maybe_sample.
    assert TelemetryRegistry().maybe_sample(100.0) is False


# --------------------------------------------------------------------------
# MetricsRegistry façade over the labeled registry
# --------------------------------------------------------------------------


def test_metrics_snapshot_key_set_is_pinned():
    """The façade must preserve the historical snapshot schema exactly."""
    metrics = MetricsRegistry(num_shards=2)
    metrics.record_request(0.8, arrival_ms=0.5, completion_ms=1.3)
    metrics.record_request(1.2, arrival_ms=1.0, completion_ms=2.2)
    metrics.record_client(0)
    metrics.record_client(3)
    metrics.record_shard_batch(0, batch_size=1, busy_ms=0.4)
    metrics.record_shard_batch(1, batch_size=1, busy_ms=0.6)
    metrics.record_replica_request(0, 1)
    metrics.record_failover(0.25)
    metrics.record_unavailability(0.0, 0.5)
    metrics.record_maintenance("compaction", 0.0, 2.0)
    metrics.bump("cache_hits", 3)
    snapshot = metrics.snapshot()
    assert list(snapshot) == [
        "requests",
        "batches",
        "span_ms",
        "throughput_per_s",
        "latency_p50_ms",
        "latency_p99_ms",
        "latency_mean_ms",
        "latency_max_ms",
        "request_skew",
        "busy_skew",
        "unique_clients",
        "client_skew",
        "replica_skew",
        "failover_latency_mean_ms",
        "failover_latency_p99_ms",
        "unavailable_ms",
        "availability",
        "maintenance_windows",
        "maintenance_ms_compaction",
        "latency_p99_during_maintenance_ms",
        "cache_hits",
        "failovers",
    ]
    assert snapshot["requests"] == 2 and isinstance(snapshot["requests"], int)
    assert snapshot["cache_hits"] == 3
    assert snapshot["failovers"] == 1
    assert snapshot["span_ms"] == pytest.approx(1.7)
    assert snapshot["maintenance_ms_compaction"] == pytest.approx(2.0)


def test_metrics_dict_views_materialize_from_labeled_instruments():
    metrics = MetricsRegistry(num_shards=4)
    metrics.record_shard_batch(2, batch_size=7, busy_ms=1.5)
    metrics.record_shard_batch(2, batch_size=3, busy_ms=0.5)
    metrics.record_client(9)
    metrics.record_replica_request(1, 0, amount=4)
    metrics.record_maintenance("rebuild", 10.0, 14.0)
    assert metrics.shard_requests == {2: 10}
    assert metrics.shard_busy_ms == {2: 2.0}
    assert metrics.client_requests == {9: 1}
    assert metrics.replica_requests == {"1:0": 4}
    assert metrics.maintenance_device_ms == {"rebuild": 4.0}
    assert metrics.counters["batches"] == 2
    # The same series are visible in the Prometheus exposition.
    text = metrics.telemetry.exposition()
    assert 'serve_shard_requests_total{shard="2"} 10' in text
    assert 'serve_replica_requests_total{replica="1:0"} 4' in text


# --------------------------------------------------------------------------
# Tracing: propagation, request spans, neutrality, export
# --------------------------------------------------------------------------


def test_trace_context_propagates_through_bulk_lookup(keyset):
    config = ServeConfig(
        num_shards=2,
        partitioner="hash",
        key_bits=32,
        cache_capacity=0,
        replication_factor=2,
        tracing=True,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    index.point_lookup_batch(keyset.keys[:64])
    tracer = index.tracer
    scatters = tracer.spans_named("router.scatter")
    assert len(scatters) == 1
    scatter = scatters[0]
    reads = tracer.spans_named("replica.read")
    lookups = tracer.spans_named("engine.lookup")
    assert reads and lookups
    # Lower layers attach to the router span via the context stack: one
    # replica.read per shard call, each with a child engine.lookup, all in
    # the scatter's trace without any explicit handle passing.
    for read in reads:
        assert read.parent_id == scatter.span_id
        assert read.trace_id == scatter.trace_id
    for lookup in lookups:
        assert lookup.parent_id in {read.span_id for read in reads}
        assert lookup.trace_id == scatter.trace_id


def test_serve_stream_emits_one_trace_per_request(keyset):
    config = ServeConfig(
        num_shards=2,
        partitioner="hash",
        key_bits=32,
        cache_capacity=256,
        max_batch_size=32,
        max_wait_ms=0.5,
        tracing=True,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(
        keyset, 512, zipf_coefficient=1.2, requests_per_ms=32.0, seed=5
    )
    index.serve_stream(stream)
    tracer = index.tracer
    roots = tracer.spans_named("request")
    assert len(roots) == 512
    assert {root.trace_id for root in roots} == {
        root.trace_id for root in roots
    } and len({root.trace_id for root in roots}) == 512
    hits = [r for r in roots if r.attributes.get("cache_hit")]
    misses = [r for r in roots if not r.attributes.get("cache_hit")]
    assert index.cache.stats.hits == len(hits) > 0
    for root in misses[:32]:
        children = {span.name for span in tracer.children_of(root)}
        assert {"queue.wait", "device.execute"} <= children
    for root in hits[:32]:
        children = tracer.children_of(root)
        assert [span.name for span in children] == ["cache.probe"]
        assert children[0].attributes["hit"] is True
    # Stage spans never extend beyond their root request interval.
    for root in roots[:64]:
        for span in tracer.children_of(root):
            assert span.start_ms >= root.start_ms - 1e-9
            assert span.end_ms <= root.end_ms + 1e-9


def test_disabled_tracer_is_behavior_neutral(keyset):
    def run(traced):
        config = ServeConfig(
            num_shards=2,
            partitioner="hash",
            key_bits=32,
            cache_capacity=128,
            max_batch_size=32,
            tracing=traced,
        )
        index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
        stream = zipf_request_stream(keyset, 256, zipf_coefficient=1.0, seed=9)
        index.serve_stream(stream, record_answers=True)
        return index

    traced, untraced = run(True), run(False)
    assert traced.tracer.spans and not untraced.tracer.spans
    rows_t, counts_t = traced.last_answers
    rows_u, counts_u = untraced.last_answers
    assert np.array_equal(rows_t, rows_u)
    assert np.array_equal(counts_t, counts_u)
    assert traced.metrics.counters == untraced.metrics.counters
    assert repr(traced.metrics.snapshot()) == repr(untraced.metrics.snapshot())


def test_chrome_trace_export_schema(tmp_path, keyset):
    config = ServeConfig(
        num_shards=2, partitioner="hash", key_bits=32, cache_capacity=64,
        tracing=True,
    )
    index = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    stream = zipf_request_stream(keyset, 128, zipf_coefficient=1.0, seed=3)
    index.serve_stream(stream)
    document = index.tracer.to_chrome_trace()
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"
    lanes = set()
    for event in document["traceEvents"]:
        assert event["ph"] in ("X", "M")
        if event["ph"] == "M":
            assert event["name"] == "thread_name"
            lanes.add(event["args"]["name"])
        else:
            assert math.isfinite(event["ts"]) and event["dur"] >= 0.0
            assert "trace_id" in event["args"] and "span_id" in event["args"]
    assert "requests" in lanes
    path = index.tracer.save_chrome_trace(str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as handle:
        parsed = _strict_loads(handle.read())
    assert len(parsed["traceEvents"]) == len(document["traceEvents"])


# --------------------------------------------------------------------------
# Critical-path attribution
# --------------------------------------------------------------------------


def _span(name, start, duration, trace_id, category="serve", parent=None):
    return Span(name, category, trace_id, 0, parent, start, duration, "test", None)


def test_critical_path_breakdown_on_synthetic_spans():
    spans = []
    # Ten requests; request 9 is the 1ms tail, dominated by queue wait.
    for trace_id in range(10):
        duration = 10.0 if trace_id == 9 else 1.0
        spans.append(_span("request", 0.0, duration, trace_id))
        spans.append(_span("queue.wait", 0.0, duration * 0.7, trace_id))
        spans.append(_span("device.execute", duration * 0.7, duration * 0.3, trace_id))
    spans.append(_span("maintenance.compaction", 2.0, 4.0, 99, category="maintenance"))
    breakdown = critical_path_breakdown(spans, percentile=90.0)
    assert breakdown["num_requests"] == 10
    assert breakdown["tail_requests"] == 1
    assert breakdown["latency_at_percentile_ms"] == pytest.approx(1.9)
    fractions = {row["stage"]: row["fraction"] for row in breakdown["stages"]}
    assert fractions["queue.wait"] == pytest.approx(0.7)
    assert fractions["device.execute"] == pytest.approx(0.3)
    assert sum(fractions.values()) == pytest.approx(1.0)
    # Rows are sorted by attributed time, descending.
    totals = [row["total_ms"] for row in breakdown["stages"]]
    assert totals == sorted(totals, reverse=True)
    # The tail request [0, 10] overlaps the maintenance window [2, 6] fully.
    assert breakdown["maintenance_overlap_ms"] == pytest.approx(4.0)
    assert breakdown["maintenance_overlap_fraction"] == pytest.approx(0.4)
    summary = format_breakdown(breakdown)
    assert summary.startswith("p90 = 70% queue.wait + 30% device.execute")


def test_critical_path_breakdown_without_requests():
    breakdown = critical_path_breakdown([])
    assert breakdown["num_requests"] == 0
    assert breakdown["stages"] == []
    assert math.isnan(breakdown["latency_at_percentile_ms"])
    assert format_breakdown(breakdown) == "p99 = (no attributed stages)"


# --------------------------------------------------------------------------
# Kernel profiling hooks
# --------------------------------------------------------------------------


def test_profiler_observes_kernels_and_disables_cleanly(keyset):
    assert profiler() is None
    prof = enable_profiling()
    try:
        index = cgrxu_factory(128)(keyset)
        rng = np.random.default_rng(3)
        index.update_batch(
            insert_keys=rng.integers(0, 1 << 32, size=2048, dtype=np.uint64).astype(
                np.uint32
            )
        )
        index.point_lookup_batch(keyset.keys[:256])
        index.compact_buckets(range(index.num_buckets))
        registry = prof.registry
        values = registry.labeled_values("core_chain_lookups_total")
        assert sum(values.values()) >= 256
        assert sum(registry.labeled_values("core_chain_nodes_visited_total").values()) > 0
        assert registry.counter("core_compaction_chains_total").value > 0
        launches = registry.labeled_values("rtx_wavefront_launches_total")
        assert sum(launches.values()) > 0
        for _, _, occupancy in registry.instruments("rtx_wavefront_occupancy"):
            assert 0.0 < occupancy.percentile(99.0) <= 1.0
    finally:
        disable_profiling()
    assert profiler() is None
    # Hooks are no-ops again: a fresh lookup adds nothing anywhere.
    before = registry.counter("core_chain_lookups_total", engine="vector").value
    index.point_lookup_batch(keyset.keys[:16])
    assert registry.counter("core_chain_lookups_total", engine="vector").value == before


def test_profiled_run_leaves_answers_bit_identical(keyset):
    index = cgrxu_factory(128)(keyset)
    baseline = index.point_lookup_batch(keyset.keys[:512])
    enable_profiling()
    try:
        profiled = index.point_lookup_batch(keyset.keys[:512])
    finally:
        disable_profiling()
    assert np.array_equal(baseline.row_ids, profiled.row_ids)
    assert np.array_equal(baseline.match_counts, profiled.match_counts)


# --------------------------------------------------------------------------
# Bench JSON hardening and the obs experiment
# --------------------------------------------------------------------------


def test_bench_json_replaces_non_finite_with_null():
    result = ExperimentResult(
        name="strictness",
        description="non-finite floats must not leak into artifacts",
        parameters={"nan": float("nan"), "nested": {"inf": math.inf}},
    )
    result.add(
        value=float("nan"),
        ninf=-math.inf,
        np_nan=np.float64("nan"),
        arr=np.array([1.0, np.nan]),
        mixed=[1.5, float("inf"), "text"],
        count=np.int64(3),
        flag=np.bool_(True),
    )
    parsed = _strict_loads(result.to_json())
    assert parsed["parameters"]["nan"] is None
    assert parsed["parameters"]["nested"]["inf"] is None
    row = parsed["rows"][0]
    assert row["value"] is None and row["ninf"] is None and row["np_nan"] is None
    assert row["arr"] == [1.0, None]
    assert row["mixed"] == [1.5, None, "text"]
    assert row["count"] == 3 and row["flag"] is True


def test_committed_bench_artifacts_are_strict_json():
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    paths = sorted(
        entry for entry in os.listdir(root)
        if entry.startswith("BENCH_") and entry.endswith(".json")
    )
    assert paths, "no committed BENCH_*.json artifacts found"
    for entry in paths:
        with open(os.path.join(root, entry), encoding="utf-8") as handle:
            parsed = _strict_loads(handle.read())
        assert parsed["rows"], f"{entry} has no rows"


def test_observability_experiment_quick(tmp_path):
    result = observability(quick=True, timing_repeats=1, trace_dir=str(tmp_path))
    panels = {row["panel"] for row in result.rows}
    assert panels == {"a_stage_breakdown", "b_overhead", "c_timeseries"}
    stages = [
        row["stage"] for row in result.rows if row["panel"] == "a_stage_breakdown"
    ]
    assert "queue.wait" in stages and "(maintenance interference)" in stages
    overhead = next(row for row in result.rows if row["panel"] == "b_overhead")
    assert overhead["answers_identical"] is True
    assert overhead["metrics_identical"] is True
    assert overhead["num_spans"] > 0
    assert "p" in result.parameters["attribution"]
    trace_path = os.path.join(str(tmp_path), "TRACE_obs.json")
    assert os.path.exists(trace_path)
    with open(trace_path, encoding="utf-8") as handle:
        trace = _strict_loads(handle.read())
    assert trace["traceEvents"]
    _strict_loads(result.to_json())
