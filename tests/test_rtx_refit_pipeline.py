"""Tests for BVH refitting and the raytracing pipeline facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtx.bvh import BvhBuildConfig, build_bvh
from repro.rtx.geometry import Ray, make_key_triangle
from repro.rtx.pipeline import RaytracingPipeline
from repro.rtx.refit import refit_bvh, total_overlap_area
from repro.rtx.scene import TriangleScene, VertexBuffer


def make_pipeline(points, leaf_size=2):
    pipeline = RaytracingPipeline(BvhBuildConfig(max_leaf_size=leaf_size))
    for slot, (x, y, z) in enumerate(points):
        pipeline.vertex_buffer.write_key_triangle(slot, float(x), float(y), float(z))
    pipeline.build_acceleration_structure()
    return pipeline


class TestRefit:
    def test_refit_requires_same_triangle_count(self):
        pipeline = make_pipeline([(1, 0, 0), (2, 0, 0)])
        with pytest.raises(ValueError):
            refit_bvh(pipeline.bvh, np.zeros((3, 3, 3), dtype=np.float32))

    def test_refit_updates_bounding_volumes(self):
        pipeline = make_pipeline([(1, 0, 0), (2, 0, 0), (3, 0, 0), (4, 0, 0)])
        bvh = pipeline.bvh
        moved = bvh.scene.vertices.copy()
        # Move the first triangle far away along x.
        moved[0] += np.array([1000.0, 0.0, 0.0], dtype=np.float32)
        refit_bvh(bvh, moved)
        assert bvh.root_aabb().maximum[0] >= 1000.0
        assert bvh.refit_generation == 1

    def test_refit_preserves_topology(self):
        pipeline = make_pipeline([(x, 0, 0) for x in range(1, 17)])
        bvh = pipeline.bvh
        nodes_before = bvh.num_nodes
        order_before = bvh.primitive_order.copy()
        refit_bvh(bvh, bvh.scene.vertices.copy())
        assert bvh.num_nodes == nodes_before
        assert np.array_equal(bvh.primitive_order, order_before)

    def test_scattering_triangles_inflates_overlap(self, rng):
        """The mechanism behind RX's post-update slowdown (Figure 1c)."""
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 64, size=(128, 2))]
        pipeline = make_pipeline(points, leaf_size=4)
        bvh = pipeline.bvh
        before = total_overlap_area(bvh)
        scattered = bvh.scene.vertices.copy()
        # Rewrite a quarter of the triangles to random far-away positions.
        for index in rng.choice(128, size=32, replace=False):
            offset = np.array(
                [float(rng.integers(0, 1 << 16)), float(rng.integers(0, 64)), 0.0], dtype=np.float32
            )
            scattered[index] = make_key_triangle(*offset).vertices()
        refit_bvh(bvh, scattered)
        after = total_overlap_area(bvh)
        assert after > before * 2

    def test_refit_empty_bvh_is_noop(self):
        bvh = build_bvh(TriangleScene.from_triangles([]))
        refit_bvh(bvh, np.zeros((0, 3, 3), dtype=np.float32))
        assert bvh.refit_generation == 1


class TestPipeline:
    def test_cast_before_build_raises(self):
        pipeline = RaytracingPipeline()
        pipeline.vertex_buffer.write_key_triangle(0, 1.0, 0.0, 0.0)
        with pytest.raises(RuntimeError):
            pipeline.cast_closest(Ray(origin=[0, 0, 0], direction=[1, 0, 0]))
        with pytest.raises(RuntimeError):
            _ = pipeline.bvh

    def test_build_and_cast(self):
        pipeline = make_pipeline([(3, 0, 0), (7, 0, 0)])
        assert pipeline.is_built
        hit = pipeline.cast_closest(Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0]))
        assert hit and hit.primitive_index == 0
        assert pipeline.build_count == 1

    def test_cast_axis_fast_path(self):
        pipeline = make_pipeline([(3, 0, 0), (7, 0, 0)])
        hit = pipeline.cast_axis_closest(0, (-0.5, 0.0, 0.0))
        assert hit and hit.primitive_index == 0
        hits = pipeline.cast_axis_all(0, (-0.5, 0.0, 0.0))
        assert [h.primitive_index for h in hits] == [0, 1]

    def test_stats_accumulate_over_lifetime(self):
        pipeline = make_pipeline([(3, 0, 0)])
        pipeline.cast_axis_closest(0, (-0.5, 0.0, 0.0))
        pipeline.cast_axis_closest(0, (-0.5, 1.0, 0.0))
        assert pipeline.lifetime_stats.rays_cast == 2
        assert pipeline.lifetime_stats.hits == 1
        assert pipeline.lifetime_stats.misses == 1

    def test_launch_closest_batches_rays(self):
        pipeline = make_pipeline([(3, 0, 0), (7, 1, 0)])
        rays = [
            Ray(origin=[-0.5, 0.0, 0.0], direction=[1.0, 0.0, 0.0]),
            Ray(origin=[-0.5, 1.0, 0.0], direction=[1.0, 0.0, 0.0]),
            Ray(origin=[-0.5, 2.0, 0.0], direction=[1.0, 0.0, 0.0]),
        ]
        result = pipeline.launch_closest(rays)
        assert len(result.hits) == 3
        assert result.stats.rays_cast == 3
        assert result.stats.hits == 2

    def test_update_requires_prior_build(self):
        pipeline = RaytracingPipeline()
        pipeline.vertex_buffer.write_key_triangle(0, 1.0, 0.0, 0.0)
        with pytest.raises(RuntimeError):
            pipeline.update_acceleration_structure()

    def test_update_rejects_changed_slot_set(self):
        pipeline = make_pipeline([(1, 0, 0), (2, 0, 0)])
        pipeline.vertex_buffer.write_key_triangle(5, 9.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            pipeline.update_acceleration_structure()

    def test_update_moves_triangles_without_rebuilding(self):
        pipeline = make_pipeline([(1, 0, 0), (2, 0, 0)])
        pipeline.vertex_buffer.write_key_triangle(0, 50.0, 0.0, 0.0)
        pipeline.update_acceleration_structure()
        assert pipeline.refit_count == 1
        assert pipeline.build_count == 1
        hit = pipeline.cast_axis_closest(0, (49.5, 0.0, 0.0))
        assert hit and hit.primitive_index == 0

    def test_memory_footprint_includes_buffer_and_bvh(self):
        pipeline = make_pipeline([(x, 0, 0) for x in range(16)])
        footprint = pipeline.memory_footprint_bytes()
        assert footprint > pipeline.vertex_buffer.memory_footprint_bytes()
        assert footprint == pipeline.vertex_buffer.memory_footprint_bytes() + pipeline.bvh.memory_footprint_bytes()

    def test_refit_updates_lookup_after_huge_coordinate_move(self):
        pipeline = make_pipeline([(1, 0, 0), (2, 0, 0)])
        big_y = 1000.0 * (1 << 15)
        pipeline.vertex_buffer.write_key_triangle(1, 7.0, big_y, 0.0)
        pipeline.update_acceleration_structure()
        hit = pipeline.cast_axis_closest(0, (6.5, big_y, 0.0))
        assert hit and hit.primitive_index == 1
