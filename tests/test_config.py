"""Tests for the cgRX / cgRXu configuration objects."""

from __future__ import annotations

import pytest

from repro.core.config import BucketLayout, CgRXConfig, CgRXuConfig, Representation, SearchStrategy


class TestCgRXConfig:
    def test_defaults_follow_paper_recommendations(self):
        config = CgRXConfig()
        assert config.bucket_size == 32
        assert config.representation is Representation.OPTIMIZED
        assert config.scaled_mapping
        assert config.search_strategy is SearchStrategy.BINARY
        assert config.bucket_layout is BucketLayout.ROW

    def test_string_values_are_coerced_to_enums(self):
        config = CgRXConfig(representation="naive", search_strategy="linear", bucket_layout="column")
        assert config.representation is Representation.NAIVE
        assert config.search_strategy is SearchStrategy.LINEAR
        assert config.bucket_layout is BucketLayout.COLUMN

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            CgRXConfig(bucket_size=0)

    def test_invalid_key_bits(self):
        with pytest.raises(ValueError):
            CgRXConfig(key_bits=16)

    def test_invalid_bvh_leaf_size(self):
        with pytest.raises(ValueError):
            CgRXConfig(bvh_leaf_size=0)

    def test_key_bytes(self):
        assert CgRXConfig(key_bits=32).key_bytes == 4
        assert CgRXConfig(key_bits=64).key_bytes == 8

    def test_describe_label(self):
        assert CgRXConfig(bucket_size=256).describe() == "cgRX (256)"

    def test_invalid_representation_string(self):
        with pytest.raises(ValueError):
            CgRXConfig(representation="fancy")


class TestCgRXuConfig:
    def test_default_node_matches_cache_line(self):
        config = CgRXuConfig()
        assert config.node_bytes == 128
        assert config.initial_fill == 0.5

    def test_node_capacity_for_32bit_keys(self):
        config = CgRXuConfig(node_bytes=128, key_bits=32)
        # 128 bytes - 16 header bytes = 112 bytes / 8 bytes per entry = 14.
        assert config.node_capacity == 14
        assert config.initial_bucket_size == 7

    def test_node_capacity_for_64bit_keys(self):
        config = CgRXuConfig(node_bytes=128, key_bits=64)
        assert config.node_capacity == (128 - 16) // 12

    def test_half_cache_line_label(self):
        assert CgRXuConfig(node_bytes=64).describe() == "cgRXu (0.5 cl)"
        assert CgRXuConfig(node_bytes=128).describe() == "cgRXu (1 cl)"

    def test_too_small_node_rejected(self):
        with pytest.raises(ValueError):
            CgRXuConfig(node_bytes=16)
        with pytest.raises(ValueError):
            CgRXuConfig(node_bytes=32, key_bits=64).node_capacity  # noqa: B018

    def test_invalid_fill_rejected(self):
        with pytest.raises(ValueError):
            CgRXuConfig(initial_fill=0.0)
        with pytest.raises(ValueError):
            CgRXuConfig(initial_fill=1.5)

    def test_invalid_key_bits_rejected(self):
        with pytest.raises(ValueError):
            CgRXuConfig(key_bits=128)
