"""Tests for the tail-tolerance layer: deadlines, budgets, hedging, breakers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, list_experiments
from repro.bench.harness import sorted_array_factory
from repro.serve import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    FailureEvent,
    ReliabilityConfig,
    ReliabilityState,
    ReplicaGroup,
    ReplicationConfig,
    ServeConfig,
    ShardedIndex,
    SimulatedClock,
)
from repro.serve.qos import TokenBucket
from repro.workloads.failures import failure_schedule
from repro.workloads.keygen import generate_keys
from repro.workloads.requests import zipf_request_stream


@pytest.fixture(scope="module")
def keyset():
    return generate_keys(num_keys=2048, uniformity=0.5, key_bits=32, seed=61)


def make_group(keyset, reliability=None, **config_kwargs):
    config = ReplicationConfig(**{"replication_factor": 2, **config_kwargs})
    group = ReplicaGroup(
        shard_id=0,
        keys=keyset.keys,
        row_ids=keyset.row_ids,
        factory=sorted_array_factory(),
        config=config,
        key_bits=32,
    )
    if reliability is not None:
        group.reliability = ReliabilityState(reliability, group.clock)
    return group


def warm(state: ReliabilityState, value_ms: float = 0.1, count: int = 64) -> None:
    for _ in range(count):
        state.observe_read(value_ms)


# --------------------------------------------------------------------------
# Config validation and shared plumbing
# --------------------------------------------------------------------------


def test_config_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        ReliabilityConfig(deadline_ms=-1.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(retry_budget=0.5)
    with pytest.raises(ValueError):
        ReliabilityConfig(hedge_quantile=1.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(breaker_failure_threshold=0.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(breaker_probe_reads=0)
    with pytest.raises(ValueError):
        ReplicationConfig(max_failover_rounds=0)


def test_token_bucket_refills_on_simulated_clock():
    bucket = TokenBucket(rate=1.0, burst=2.0)
    assert bucket.take(0.0) and bucket.take(0.0)
    assert not bucket.take(0.0)  # burst spent
    assert bucket.take(1.0)  # one ms refills one token
    assert not bucket.take(1.0)


def test_backoff_jitter_is_seeded_and_per_shard():
    config = ReliabilityConfig(retry_backoff_base_ms=0.1, retry_jitter=0.5)
    first = ReliabilityState(config, SimulatedClock())
    second = ReliabilityState(config, SimulatedClock())
    sequence = [first.backoff_ms(0, i) for i in range(1, 5)]
    assert sequence == [second.backoff_ms(0, i) for i in range(1, 5)]
    assert sequence != [second.backoff_ms(1, i) for i in range(1, 5)]
    # Exponential growth underneath the jitter.
    assert sequence[3] > sequence[0] * 4


def test_hedge_threshold_stays_cold_until_min_samples():
    state = ReliabilityState(
        ReliabilityConfig(hedge_quantile=0.9, hedge_min_samples=8), SimulatedClock()
    )
    warm(state, count=7)
    assert state.hedge_threshold_ms() == float("inf")
    warm(state, count=1)
    assert np.isfinite(state.hedge_threshold_ms())


def test_snapshot_is_json_safe_while_cold():
    import json

    state = ReliabilityState(ReliabilityConfig(hedge_quantile=0.9), SimulatedClock())
    report = state.snapshot()
    assert report["hedge_threshold_ms"] is None
    json.dumps(report)


# --------------------------------------------------------------------------
# Circuit breakers
# --------------------------------------------------------------------------


def breaker(**overrides) -> CircuitBreaker:
    return CircuitBreaker(
        ReliabilityConfig(
            breaker_window=4,
            breaker_min_samples=2,
            breaker_failure_threshold=0.5,
            breaker_open_ms=2.0,
            breaker_probe_reads=2,
            **overrides,
        )
    )


def test_breaker_trips_at_failure_threshold():
    cb = breaker()
    cb.record(0.0, ok=False)
    assert cb.state == BREAKER_CLOSED  # below min samples
    cb.record(0.0, ok=False)
    assert cb.state == BREAKER_OPEN
    assert cb.opens == 1
    assert not cb.allow(0.5)


def test_breaker_half_opens_after_open_window():
    cb = breaker()
    cb.trip(0.0)
    assert not cb.allow(1.9)
    assert cb.allow(2.0)  # probe admitted
    assert cb.state == BREAKER_HALF_OPEN
    assert cb.half_opens == 1


def test_breaker_closes_after_probe_successes():
    cb = breaker()
    cb.trip(0.0)
    assert cb.allow(2.0)
    cb.record(2.0, ok=True)
    assert cb.state == BREAKER_HALF_OPEN
    cb.record(2.1, ok=True)
    assert cb.state == BREAKER_CLOSED
    assert cb.closes == 1


def test_breaker_reopens_on_probe_failure():
    cb = breaker()
    cb.trip(0.0)
    assert cb.allow(2.0)
    cb.record(2.0, ok=False)
    assert cb.state == BREAKER_OPEN
    assert cb.opens == 2
    assert not cb.allow(2.5)


def test_breaker_ignores_outcomes_while_open():
    cb = breaker()
    cb.trip(0.0)
    cb.record(0.5, ok=True)  # fail-open read while tripped
    assert cb.state == BREAKER_OPEN


def test_breaker_filters_read_candidates(keyset):
    group = make_group(keyset, reliability=ReliabilityConfig())
    rel = group.reliability
    rel.breaker(0, 0).trip(group.clock.now_ms)
    for _ in range(4):
        group.point_lookup_batch(keyset.keys[:8])
    assert group.replicas[0].reads_served == 0
    assert group.replicas[1].reads_served == 4 * 8
    assert group.counters["breaker_skips"] >= 4


def test_breaker_fail_open_when_every_breaker_is_open(keyset):
    group = make_group(keyset, reliability=ReliabilityConfig())
    rel = group.reliability
    now = group.clock.now_ms
    rel.breaker(0, 0).trip(now)
    rel.breaker(0, 1).trip(now)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert result.match_counts.sum() > 0  # served despite both breakers
    assert group.counters["breaker_fail_open"] >= 1
    assert not group.last_read_unavailable


def test_transient_errors_trip_the_replica_breaker(keyset):
    group = make_group(
        keyset,
        reliability=ReliabilityConfig(
            breaker_window=4, breaker_min_samples=2, breaker_failure_threshold=0.5
        ),
    )
    group.inject_transient(0, 10)
    for _ in range(4):
        group.point_lookup_batch(keyset.keys[:8])
    assert group.reliability.breaker(0, 0).opens >= 1
    # While the breaker holds replica 0 out, its error supply stays put.
    assert group.replicas[0].pending_transient > 0


# --------------------------------------------------------------------------
# Bounded failover rounds (satellite bug fix)
# --------------------------------------------------------------------------


def test_all_replicas_erroring_read_is_bounded(keyset):
    # Pre-fix, the failover loop span round after round until the error
    # supply drained: 10k injected errors meant ~10k failover attempts
    # inside ONE read.  Bounded rounds force-restart a replica instead.
    group = make_group(keyset, max_failover_rounds=4)
    group.inject_transient(0, 10_000)
    group.inject_transient(1, 10_000)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert result.match_counts.sum() > 0  # the read still answers
    assert group.counters["forced_restarts"] >= 1
    assert group.counters["failovers"] <= 4 * 2 + 2
    assert group.counters["read_unavailable"] >= 1


def test_forced_restart_clears_the_wedged_replica(keyset):
    group = make_group(keyset, max_failover_rounds=2)
    group.inject_transient(0, 1_000)
    group.inject_transient(1, 1_000)
    group.point_lookup_batch(keyset.keys[:8])
    # The restarted (lowest-id available) replica came back clean.
    assert group.replicas[0].pending_transient == 0


# --------------------------------------------------------------------------
# Retry budgets and deadlines at the replica layer
# --------------------------------------------------------------------------


def test_retry_budget_exhaustion_returns_explicit_unavailable(keyset):
    group = make_group(
        keyset,
        reliability=ReliabilityConfig(retry_budget=2.0, retry_refill_per_ms=0.0),
    )
    group.inject_transient(0, 100)
    group.inject_transient(1, 100)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert group.last_read_unavailable
    assert np.all(result.row_ids == -1)
    assert np.all(result.match_counts == 0)
    assert group.reliability.counters["retry_budget_exhausted"] >= 1
    assert group.counters["read_unavailable_retry_budget"] == 1


def test_retries_spend_budget_and_pay_backoff(keyset):
    config = ReliabilityConfig(retry_backoff_base_ms=0.2, retry_jitter=0.0)
    group = make_group(keyset, reliability=config)
    group.inject_transient(0, 1)
    group.inject_transient(1, 1)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert result.match_counts.sum() > 0
    assert group.reliability.counters["retries"] == 2
    # Overhead = 2 failover penalties + 0.2 + 0.4 backoff.
    assert group.last_overhead_ms == pytest.approx(2 * 0.05 + 0.2 + 0.4)


def test_deadline_abandons_retries_past_the_budget(keyset):
    group = make_group(keyset, reliability=ReliabilityConfig(deadline_ms=5.0))
    group.inject_transient(0, 50)
    group.inject_transient(1, 50)
    group.begin_read(start_ms=0.0, deadline_ms=0.01)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert group.last_read_unavailable
    assert np.all(result.row_ids == -1)
    assert group.counters["read_unavailable_deadline"] == 1
    # The armed deadline is consumed by the read; the next one is unbounded.
    assert group._read_deadline_ms is None


def test_unarmed_reads_keep_classic_semantics(keyset):
    group = make_group(keyset)  # no reliability state
    group.inject_transient(0, 3)
    result = group.point_lookup_batch(keyset.keys[:8])
    assert result.match_counts.sum() > 0
    assert not group.last_read_unavailable
    assert group.lookup_time_ms(result) > 0.0


# --------------------------------------------------------------------------
# Hedged reads
# --------------------------------------------------------------------------


def hedged_config(**overrides) -> ReliabilityConfig:
    return ReliabilityConfig(
        **{"hedge_quantile": 0.9, "hedge_min_samples": 4, **overrides}
    )


def test_hedge_fires_and_wins_against_a_slow_primary(keyset):
    group = make_group(keyset, reliability=hedged_config())
    warm(group.reliability, value_ms=0.01, count=8)
    group.set_slow(0, 500.0)
    slow_service = None
    for _ in range(2):  # round robin: one of the two reads lands on replica 0
        result = group.point_lookup_batch(keyset.keys[:8])
        if group.last_read_ms is not None:
            slow_service = group.cost_model.kernel_time_ms(result.stats) * 500.0
            assert group.lookup_time_ms(result) < slow_service
    rel = group.reliability
    assert rel.counters["hedges"] >= 1
    assert rel.counters["hedge_wins"] >= 1
    assert slow_service is not None
    assert rel.hedge_waste_ms > 0.0  # the loser's device time is accounted


def test_hedge_loses_when_the_peer_is_slow_too(keyset):
    group = make_group(keyset, reliability=hedged_config())
    warm(group.reliability, value_ms=0.01, count=8)
    group.set_slow(0, 50.0)
    group.set_slow(1, 50.0)
    group.point_lookup_batch(keyset.keys[:8])
    rel = group.reliability
    assert rel.counters["hedges"] == 1
    assert rel.counters.get("hedge_losses", 0) == 1
    assert rel.hedge_waste_ms > 0.0


def test_hedge_needs_a_healthy_peer(keyset):
    group = make_group(keyset, replication_factor=1, reliability=hedged_config())
    warm(group.reliability, value_ms=0.01, count=8)
    group.set_slow(0, 500.0)
    group.point_lookup_batch(keyset.keys[:8])
    assert "hedges" not in group.reliability.counters


def test_hedge_emits_trace_span(keyset):
    from repro.obs.trace import Tracer

    group = make_group(keyset, reliability=hedged_config())
    group.tracer = Tracer(clock=group.clock, enabled=True)
    warm(group.reliability, value_ms=0.01, count=8)
    group.set_slow(0, 500.0)
    for _ in range(2):
        group.point_lookup_batch(keyset.keys[:8])
    names = {span.name for span in group.tracer.spans}
    assert "replica.hedge" in names
    hedge = next(s for s in group.tracer.spans if s.name == "replica.hedge")
    assert hedge.attributes["won"] is True
    assert hedge.attributes["replica"] != hedge.attributes["primary"]


def test_hedge_accounting_flows_into_metrics(keyset):
    from repro.serve.metrics import MetricsRegistry

    group = make_group(keyset, reliability=hedged_config())
    group.metrics = MetricsRegistry(num_shards=1)
    warm(group.reliability, value_ms=0.01, count=8)
    group.set_slow(0, 500.0)
    for _ in range(2):
        group.point_lookup_batch(keyset.keys[:8])
    snapshot = group.metrics.snapshot()
    assert snapshot.get("hedges", 0) >= 1
    assert snapshot.get("hedge_wins", 0) >= 1


# --------------------------------------------------------------------------
# Serving-layer integration: deadlines, partial results, stale reads
# --------------------------------------------------------------------------


def oracle_answers(keyset, stream):
    from repro.baselines.sorted_array import SortedArrayIndex

    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)
    return oracle.point_lookup_batch(stream.keys.astype(np.uint32))


def serve(keyset, stream, config, events=None):
    deployment = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    if events is not None:
        deployment.inject_failures(events)
    deployment.serve_stream(stream, record_answers=True)
    return deployment


def test_deadline_exceeded_requests_are_capped_and_masked(keyset):
    stream = zipf_request_stream(
        keyset, 256, requests_per_ms=64.0, miss_fraction=0.0, seed=5
    )
    config = ServeConfig(
        num_shards=2,
        key_bits=32,
        cache_capacity=0,
        max_wait_ms=0.5,
        reliability=ReliabilityConfig(deadline_ms=0.2),
    )
    deployment = serve(keyset, stream, config)
    metrics = deployment.metrics
    assert deployment.last_deadline_exceeded.sum() > 0
    assert max(metrics.request_latencies) <= 0.2 + 1e-9
    # Complete (unmasked) answers stay byte-identical to the oracle.
    expected = oracle_answers(keyset, stream)
    mask = ~deployment.last_deadline_exceeded
    row_agg, counts = deployment.last_answers
    assert row_agg[mask].tobytes() == expected.row_ids[mask].tobytes()
    assert counts[mask].tobytes() == expected.match_counts[mask].tobytes()


def test_no_deadline_means_no_mask(keyset):
    stream = zipf_request_stream(keyset, 64, requests_per_ms=16.0, seed=6)
    config = ServeConfig(
        num_shards=2, key_bits=32, cache_capacity=0, reliability=ReliabilityConfig()
    )
    deployment = serve(keyset, stream, config)
    assert deployment.last_deadline_exceeded.sum() == 0
    assert deployment.last_unavailable.sum() == 0


def whole_fleet_outage(num_shards, factor, duration_ms):
    return [
        FailureEvent(
            at_ms=0.0,
            kind="crash",
            shard_id=shard,
            replica_id=replica,
            duration_ms=duration_ms,
        )
        for shard in range(num_shards)
        for replica in range(factor)
    ]


def test_whole_group_outage_yields_explicit_partial_results(keyset):
    stream = zipf_request_stream(
        keyset, 128, requests_per_ms=32.0, miss_fraction=0.0, seed=7
    )
    config = ServeConfig(
        num_shards=2,
        key_bits=32,
        cache_capacity=0,
        replication_factor=2,
        reliability=ReliabilityConfig(),
    )
    deployment = serve(
        keyset, stream, config, events=whole_fleet_outage(2, 2, duration_ms=1e6)
    )
    assert deployment.last_unavailable.sum() == len(stream)
    row_agg, counts = deployment.last_answers
    assert np.all(row_agg[deployment.last_unavailable] == -1)
    assert np.all(counts[deployment.last_unavailable] == 0)
    snapshot = deployment.metrics.snapshot()
    assert snapshot.get("requests_unavailable", 0) == len(stream)
    # The classic contract would have emergency-restarted instead.
    assert deployment.replication_snapshot().get("emergency_restarts", 0) == 0


def test_stale_reads_answer_from_the_durable_store(keyset, tmp_path):
    stream = zipf_request_stream(
        keyset, 128, requests_per_ms=32.0, miss_fraction=0.05, seed=8
    )
    config = ServeConfig(
        num_shards=2,
        key_bits=32,
        cache_capacity=0,
        replication_factor=2,
        store_dir=str(tmp_path / "store"),
        store_fsync=False,
        reliability=ReliabilityConfig(stale_reads=True),
    )
    deployment = serve(
        keyset, stream, config, events=whole_fleet_outage(2, 2, duration_ms=1e6)
    )
    assert deployment.last_stale.sum() == len(stream)
    assert deployment.last_unavailable.sum() == 0
    # Nothing was written after the checkpoint: stale bytes == fresh bytes.
    expected = oracle_answers(keyset, stream)
    row_agg, counts = deployment.last_answers
    assert row_agg.tobytes() == expected.row_ids.tobytes()
    assert counts.tobytes() == expected.match_counts.tobytes()
    assert deployment.metrics.snapshot().get("stale_reads_served", 0) == len(stream)


def test_unavailable_answers_never_poison_the_cache(keyset):
    stream = zipf_request_stream(
        keyset, 96, requests_per_ms=32.0, miss_fraction=0.0, seed=9
    )
    config = ServeConfig(
        num_shards=2,
        key_bits=32,
        cache_capacity=512,
        replication_factor=2,
        reliability=ReliabilityConfig(),
    )
    deployment = serve(
        keyset, stream, config, events=whole_fleet_outage(2, 2, duration_ms=50.0)
    )
    # The outage is over; every stored key must answer correctly now — a
    # cache poisoned with unavailable miss answers would fail this.
    deployment._poll_failures(1e6)
    deployment.maintenance.run_cycle(1e6)
    probe = keyset.keys[:256]
    from repro.baselines.sorted_array import SortedArrayIndex

    oracle = SortedArrayIndex(keyset.keys, keyset.row_ids, key_bits=32)
    expected = oracle.point_lookup_batch(probe)
    answered = deployment.point_lookup_batch(probe)
    np.testing.assert_array_equal(answered.row_ids, expected.row_ids)
    np.testing.assert_array_equal(answered.match_counts, expected.match_counts)


def test_describe_marks_reliability():
    config = ServeConfig(reliability=ReliabilityConfig())
    assert config.describe().endswith("+rel")
    assert "+rel" not in ServeConfig().describe()


# --------------------------------------------------------------------------
# Fault-activity gauges (satellite)
# --------------------------------------------------------------------------


def test_fault_active_gauges_track_injected_windows(keyset):
    config = ServeConfig(
        num_shards=2, key_bits=32, cache_capacity=0, replication_factor=2
    )
    deployment = ShardedIndex(keyset.keys, keyset.row_ids, config=config)
    injector = deployment.inject_failures(
        [
            FailureEvent(at_ms=1.0, kind="crash", shard_id=0, replica_id=0, duration_ms=5.0),
            FailureEvent(at_ms=1.0, kind="slow", shard_id=1, replica_id=1, duration_ms=5.0, slow_factor=4.0),
            FailureEvent(at_ms=1.0, kind="transient", shard_id=0, replica_id=1, error_count=3),
        ]
    )
    telemetry = deployment.metrics.telemetry
    injector.poll(2.0)
    assert telemetry.gauge("fault_active_crash").value == 1.0
    assert telemetry.gauge("fault_active_slow").value == 1.0
    assert telemetry.gauge("fault_active_transient").value == 3.0
    injector.poll(10.0)  # both windows expired
    assert telemetry.gauge("fault_active_crash").value == 0.0
    assert telemetry.gauge("fault_active_slow").value == 0.0


# --------------------------------------------------------------------------
# Gray-failure weather (satellite: seed stability + semantics)
# --------------------------------------------------------------------------

BASE_WEATHER = dict(
    num_shards=4,
    replication_factor=3,
    duration_ms=100.0,
    crashes_per_s=30.0,
    slowdowns_per_s=30.0,
    transients_per_s=60.0,
    process_kills_per_s=10.0,
    seed=17,
)


def event_key(event):
    return (
        event.kind,
        event.at_ms,
        event.shard_id,
        event.replica_id,
        event.duration_ms,
        event.slow_factor,
        event.error_count,
    )


def test_gray_weather_does_not_shift_known_seed_schedules():
    base = failure_schedule(**BASE_WEATHER)
    with_gray = failure_schedule(
        **BASE_WEATHER,
        latency_storms_per_s=40.0,
        correlated_outages_per_s=20.0,
        flapping_per_s=20.0,
    )
    base_keys = [event_key(e) for e in base]
    gray_keys = [event_key(e) for e in with_gray]
    assert len(gray_keys) > len(base_keys)
    # Every classic-class event survives byte-for-byte: gray draws happen
    # strictly after the existing classes.
    for key in base_keys:
        assert key in gray_keys


def test_weather_is_deterministic_per_seed():
    kwargs = dict(BASE_WEATHER, latency_storms_per_s=40.0, flapping_per_s=10.0)
    first = [event_key(e) for e in failure_schedule(**kwargs)]
    second = [event_key(e) for e in failure_schedule(**kwargs)]
    assert first == second


def test_latency_storm_spares_at_least_one_replica():
    events = failure_schedule(
        num_shards=2,
        replication_factor=3,
        duration_ms=200.0,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        latency_storms_per_s=40.0,
        storm_slow_factor=8.0,
        seed=3,
    )
    assert events and all(e.kind == "slow" for e in events)
    assert all(e.slow_factor == 8.0 for e in events)
    # Storm victims cluster within their 0.5 ms onset jitter; each cluster
    # hits at most replication_factor - 1 replicas of its shard.
    events = sorted(events, key=lambda e: e.at_ms)
    cluster, start = [], None
    clusters = []
    for event in events:
        if start is None or event.at_ms - start > 0.5:
            if cluster:
                clusters.append(cluster)
            cluster, start = [event], event.at_ms
        else:
            cluster.append(event)
    clusters.append(cluster)
    for cluster in clusters:
        assert len({e.replica_id for e in cluster}) <= 2


def test_correlated_outage_crashes_the_whole_group_at_once():
    events = failure_schedule(
        num_shards=3,
        replication_factor=3,
        duration_ms=200.0,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        correlated_outages_per_s=20.0,
        seed=4,
    )
    assert events and all(e.kind == "crash" for e in events)
    by_onset = {}
    for event in events:
        by_onset.setdefault((event.at_ms, event.shard_id), []).append(event)
    for (_, _), group in by_onset.items():
        assert sorted(e.replica_id for e in group) == [0, 1, 2]
        assert len({e.duration_ms for e in group}) == 1  # one shared outage


def test_flapping_generates_bounce_cycles_on_one_replica():
    events = failure_schedule(
        num_shards=2,
        replication_factor=2,
        duration_ms=200.0,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        flapping_per_s=10.0,
        flap_cycles=3,
        seed=5,
    )
    assert events and all(e.kind == "crash" for e in events)
    assert len(events) % 3 == 0  # flap_cycles crashes per flap


def test_spare_replica_is_exempt_from_correlated_outages():
    events = failure_schedule(
        num_shards=2,
        replication_factor=3,
        duration_ms=200.0,
        crashes_per_s=0.0,
        slowdowns_per_s=0.0,
        transients_per_s=0.0,
        correlated_outages_per_s=30.0,
        flapping_per_s=20.0,
        spare_replica=1,
        seed=6,
    )
    assert events
    assert all(e.replica_id != 1 for e in events)


# --------------------------------------------------------------------------
# Bench registration (satellites)
# --------------------------------------------------------------------------


def test_reliability_experiment_is_registered():
    import inspect

    assert "reliability" in ALL_EXPERIMENTS
    assert "quick" in inspect.signature(ALL_EXPERIMENTS["reliability"]).parameters


def test_bench_list_prints_one_line_descriptions():
    lines = list_experiments()
    by_name = {line.split()[0]: line for line in lines}
    assert "reliability" in by_name
    # Each line carries a human summary beyond the bare name.
    for name, line in by_name.items():
        assert len(line.split(None, 1)) == 2, f"{name} has no description"
    assert "gray" in by_name["reliability"].lower() or "tail" in by_name["reliability"].lower()
