"""Tests for the GPU execution model: devices, kernels, memory, SIMT, cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cost_model import (
    L2_HIT_RELATIVE_COST,
    RT_NODE_RESIDUAL_BYTES,
    UNCOALESCED_ACCESS_BYTES,
    CostModel,
)
from repro.gpu.device import RTX_4090, RTX_A6000, GpuDevice
from repro.gpu.kernels import KernelStats, combine
from repro.gpu.memory import GIB, MemoryFootprint, array_bytes
from repro.gpu.simt import (
    COOPERATIVE_GROUP_SIZE,
    WARP_SIZE,
    cooperative_scan_steps,
    divergence_factor,
    occupancy,
    warps_for_threads,
)


class TestDevices:
    def test_rtx_4090_properties(self):
        assert RTX_4090.vram_gib == pytest.approx(24.0)
        assert RTX_4090.sm_count == 128
        assert RTX_4090.rt_core_count == 128

    def test_a6000_has_more_memory_but_less_bandwidth(self):
        assert RTX_A6000.vram_bytes > RTX_4090.vram_bytes
        assert RTX_A6000.memory_bandwidth < RTX_4090.memory_bandwidth

    def test_fits_in_memory(self):
        assert RTX_4090.fits_in_memory(1 << 30)
        assert not RTX_4090.fits_in_memory(100 * (1 << 30))


class TestKernelStats:
    def test_total_bytes(self):
        stats = KernelStats(bytes_read=100, bytes_written=50)
        assert stats.total_bytes == 150

    def test_merge_accumulates_work(self):
        a = KernelStats(threads=10, bytes_read=100, compute_ops=5, launches=1)
        b = KernelStats(threads=20, bytes_read=200, compute_ops=10, launches=2)
        a.merge(b)
        assert a.bytes_read == 300
        assert a.compute_ops == 15
        assert a.launches == 3
        assert a.threads == 20  # parallelism is the maximum, not the sum

    def test_merge_weights_cache_fraction_by_traffic(self):
        a = KernelStats(bytes_read=100, cache_hit_fraction=1.0)
        b = KernelStats(bytes_read=300, cache_hit_fraction=0.0)
        a.merge(b)
        assert a.cache_hit_fraction == pytest.approx(0.25)

    def test_copy_is_independent(self):
        a = KernelStats(bytes_read=10)
        b = a.copy()
        b.bytes_read = 99
        assert a.bytes_read == 10

    def test_combine_aggregates_parts(self):
        merged = combine("x", [KernelStats(bytes_read=10, launches=1), KernelStats(bytes_read=20, launches=1)])
        assert merged.bytes_read == 30
        assert merged.launches == 2

    def test_combine_empty_has_one_launch(self):
        assert combine("x", []).launches == 1


class TestMemoryFootprint:
    def test_add_and_total(self):
        footprint = MemoryFootprint()
        footprint.add("a", 100).add("b", 200).add("a", 50)
        assert footprint.get("a") == 150
        assert footprint.total_bytes == 350

    def test_set_overwrites(self):
        footprint = MemoryFootprint()
        footprint.add("a", 100)
        footprint.set("a", 10)
        assert footprint.total_bytes == 10

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryFootprint().add("a", -1)

    def test_total_gib(self):
        footprint = MemoryFootprint().add("a", int(GIB))
        assert footprint.total_gib == pytest.approx(1.0)

    def test_merged_with_keeps_operands_unchanged(self):
        a = MemoryFootprint().add("x", 10)
        b = MemoryFootprint().add("x", 5).add("y", 1)
        merged = a.merged_with(b)
        assert merged.get("x") == 15
        assert merged.get("y") == 1
        assert a.get("x") == 10

    def test_describe_mentions_components(self):
        text = MemoryFootprint().add("bvh", 1024).describe()
        assert "bvh" in text
        assert "total" in text

    def test_iteration_is_sorted(self):
        footprint = MemoryFootprint().add("z", 1).add("a", 2)
        assert [name for name, _ in footprint] == ["a", "z"]

    def test_array_bytes(self):
        assert array_bytes(10, 8) == 80
        with pytest.raises(ValueError):
            array_bytes(-1, 8)

    def test_remove(self):
        footprint = MemoryFootprint().add("a", 5)
        footprint.remove("a")
        footprint.remove("not-there")
        assert footprint.total_bytes == 0


class TestSimt:
    def test_warps_for_threads(self):
        assert warps_for_threads(0) == 0
        assert warps_for_threads(1) == 1
        assert warps_for_threads(WARP_SIZE) == 1
        assert warps_for_threads(WARP_SIZE + 1) == 2

    def test_cooperative_scan_steps(self):
        assert cooperative_scan_steps(0) == 0
        assert cooperative_scan_steps(1) == 1
        assert cooperative_scan_steps(COOPERATIVE_GROUP_SIZE) == 1
        assert cooperative_scan_steps(COOPERATIVE_GROUP_SIZE + 1) == 2

    def test_divergence_factor_uniform_work_is_one(self):
        assert divergence_factor([5] * 64) == pytest.approx(1.0)

    def test_divergence_factor_increases_with_imbalance(self):
        balanced = divergence_factor([4] * 32)
        imbalanced = divergence_factor([1] * 31 + [100])
        assert imbalanced > balanced

    def test_divergence_factor_empty_and_zero(self):
        assert divergence_factor([]) == 1.0
        assert divergence_factor([0, 0, 0]) == 1.0

    def test_occupancy_saturates_at_one(self):
        assert occupancy(1 << 20, 1 << 15) == 1.0
        assert occupancy(1 << 14, 1 << 15) == pytest.approx(0.5)
        assert occupancy(0, 1 << 15) == 0.0


class TestCostModel:
    def test_more_bytes_cost_more_time(self):
        model = CostModel(RTX_4090)
        small = KernelStats(threads=1 << 20, bytes_read=1 << 20)
        large = KernelStats(threads=1 << 20, bytes_read=1 << 28)
        assert model.kernel_time_ms(large) > model.kernel_time_ms(small)

    def test_cache_hits_reduce_time(self):
        model = CostModel(RTX_4090)
        cold = KernelStats(threads=1 << 20, bytes_read=1 << 28, cache_hit_fraction=0.0)
        warm = KernelStats(threads=1 << 20, bytes_read=1 << 28, cache_hit_fraction=0.9)
        assert model.kernel_time_ms(warm) < model.kernel_time_ms(cold)
        # Cached traffic is discounted but never free.
        assert model.kernel_time_ms(warm) > model.kernel_time_ms(
            KernelStats(threads=1 << 20, bytes_read=0)
        )

    def test_underutilised_batches_are_slower_per_unit_work(self):
        model = CostModel(RTX_4090)
        work = dict(bytes_read=1 << 26)
        full = KernelStats(threads=1 << 16, **work)
        tiny = KernelStats(threads=1 << 6, **work)
        assert model.kernel_time_ms(tiny) > model.kernel_time_ms(full)

    def test_divergence_multiplies_time(self):
        model = CostModel(RTX_4090)
        base = KernelStats(threads=1 << 20, bytes_read=1 << 28, divergence=1.0)
        divergent = KernelStats(threads=1 << 20, bytes_read=1 << 28, divergence=2.0)
        assert model.kernel_time_ms(divergent) == pytest.approx(
            2 * (model.kernel_time_ms(base) - RTX_4090.kernel_launch_overhead_ms)
            + RTX_4090.kernel_launch_overhead_ms
        )

    def test_bottleneck_identification(self):
        model = CostModel(RTX_4090)
        memory_bound = model.breakdown(KernelStats(threads=1 << 20, bytes_read=1 << 30))
        rt_bound = model.breakdown(KernelStats(threads=1 << 20, bvh_node_visits=10**9))
        assert memory_bound.bottleneck == "memory"
        assert rt_bound.bottleneck == "rt"

    def test_launch_overhead_scales_with_launches(self):
        model = CostModel(RTX_4090)
        one = KernelStats(threads=1 << 20, launches=1)
        many = KernelStats(threads=1 << 20, launches=10)
        delta = model.kernel_time_ms(many) - model.kernel_time_ms(one)
        assert delta == pytest.approx(9 * RTX_4090.kernel_launch_overhead_ms)

    def test_total_time_sums_parts(self):
        model = CostModel(RTX_4090)
        parts = [KernelStats(threads=1 << 20, bytes_read=1 << 24) for _ in range(3)]
        assert model.total_time_ms(parts) == pytest.approx(3 * model.kernel_time_ms(parts[0]))

    def test_throughput_per_second(self):
        model = CostModel(RTX_4090)
        stats = KernelStats(threads=1 << 20, bytes_read=1 << 28)
        throughput = model.throughput_per_second(stats, operations=1 << 20)
        assert throughput > 0

    def test_cache_hit_fraction_shrinks_with_working_set(self):
        model = CostModel(RTX_4090)
        small = model.cache_hit_fraction(1 << 20)
        huge = model.cache_hit_fraction(1 << 34)
        assert small > huge

    def test_cache_hit_fraction_grows_with_skew(self):
        model = CostModel(RTX_4090)
        uniform = model.cache_hit_fraction(1 << 32, unique_fraction=1.0)
        skewed = model.cache_hit_fraction(1 << 32, unique_fraction=0.01)
        assert skewed > uniform

    def test_slower_device_is_slower(self):
        stats = KernelStats(threads=1 << 20, bytes_read=1 << 30)
        assert CostModel(RTX_A6000).kernel_time_ms(stats) > CostModel(RTX_4090).kernel_time_ms(stats)

    @settings(max_examples=40, deadline=None)
    @given(
        bytes_read=st.integers(min_value=0, max_value=1 << 32),
        node_visits=st.integers(min_value=0, max_value=1 << 24),
        compute=st.integers(min_value=0, max_value=1 << 30),
        threads=st.integers(min_value=1, max_value=1 << 22),
        divergence=st.floats(min_value=1.0, max_value=8.0),
        cache=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_time_is_positive_and_finite(
        self, bytes_read, node_visits, compute, threads, divergence, cache
    ):
        model = CostModel(RTX_4090)
        stats = KernelStats(
            threads=threads,
            bytes_read=bytes_read,
            bvh_node_visits=node_visits,
            compute_ops=compute,
            divergence=divergence,
            cache_hit_fraction=cache,
        )
        time_ms = model.kernel_time_ms(stats)
        assert np.isfinite(time_ms)
        assert time_ms >= RTX_4090.kernel_launch_overhead_ms


class TestConstants:
    def test_uncoalesced_access_is_at_least_a_sector(self):
        assert UNCOALESCED_ACCESS_BYTES >= 32

    def test_rt_residual_below_full_node(self):
        assert 0 < RT_NODE_RESIDUAL_BYTES <= 32

    def test_l2_hit_cost_is_a_discount(self):
        assert 0.0 < L2_HIT_RELATIVE_COST < 1.0
