"""Tests for vertex buffers and triangle scenes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtx.geometry import TRIANGLE_BYTES, make_key_triangle
from repro.rtx.scene import BuildFlags, TriangleScene, VertexBuffer


class TestVertexBuffer:
    def test_new_buffer_is_empty(self):
        buffer = VertexBuffer()
        assert len(buffer) == 0
        assert buffer.num_occupied == 0
        assert buffer.memory_footprint_bytes() == 0

    def test_write_key_triangle_occupies_slot(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(3, 1.0, 2.0, 0.0)
        assert buffer.num_occupied == 1
        assert buffer.occupied_mask[3]
        assert not buffer.occupied_mask[0]

    def test_write_grows_capacity_automatically(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(100, 0.0, 0.0, 0.0)
        assert len(buffer) >= 101

    def test_reserve_never_shrinks(self):
        buffer = VertexBuffer(capacity=16)
        buffer.reserve(8)
        assert len(buffer) == 16
        buffer.reserve(32)
        assert len(buffer) == 32

    def test_reserve_preserves_existing_triangles(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 5.0, 1.0, 0.0)
        buffer.reserve(64)
        triangle = buffer.triangle(0)
        assert triangle is not None
        assert np.allclose(triangle.centroid(), [5.0, 1.0, 0.0], atol=1e-5)

    def test_footprint_counts_empty_slots(self):
        # The paper's footprint numbers include gaps in the marker buffer.
        buffer = VertexBuffer()
        buffer.reserve(10)
        buffer.write_key_triangle(0, 0.0, 0.0, 0.0)
        assert buffer.memory_footprint_bytes() == 10 * TRIANGLE_BYTES

    def test_clear_slot(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(2, 1.0, 1.0, 0.0)
        buffer.clear_slot(2)
        assert buffer.num_occupied == 0
        assert buffer.triangle(2) is None

    def test_triangle_returns_none_for_empty_slot(self):
        buffer = VertexBuffer(capacity=4)
        assert buffer.triangle(1) is None
        assert buffer.triangle(100) is None

    def test_flipped_flag_is_tracked(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 1.0, 0.0, 0.0, flipped=False)
        buffer.write_key_triangle(1, 2.0, 0.0, 0.0, flipped=True)
        assert not buffer.flipped_mask[0]
        assert buffer.flipped_mask[1]

    def test_exact_centres_survive_huge_scaled_coordinates(self):
        # Scaled scene coordinates can exceed float32 integer precision; the
        # buffer tracks exact centres separately.
        buffer = VertexBuffer()
        y = 5688899 * float(1 << 15)
        buffer.write_key_triangle(0, 4194304.0, y, 1811939328.0)
        assert buffer.centres[0, 1] == y

    def test_bulk_write_matches_single_writes(self):
        bulk = VertexBuffer()
        single = VertexBuffer()
        xs = np.array([1.0, 5.0, 9.0])
        ys = np.array([0.0, 2.0, 3.0])
        zs = np.array([0.0, 0.0, 1.0])
        flipped = np.array([False, True, False])
        bulk.write_key_triangles(np.array([0, 1, 2]), xs, ys, zs, flipped)
        for slot in range(3):
            single.write_key_triangle(slot, xs[slot], ys[slot], zs[slot], flipped=bool(flipped[slot]))
        assert np.allclose(bulk.vertices[:3], single.vertices[:3], atol=1e-6)
        assert np.array_equal(bulk.flipped_mask[:3], single.flipped_mask[:3])
        assert np.allclose(bulk.centres[:3], single.centres[:3])

    def test_bulk_write_with_empty_slots_is_noop(self):
        buffer = VertexBuffer()
        buffer.write_key_triangles(np.array([], dtype=np.int64), np.array([]), np.array([]), np.array([]))
        assert buffer.num_occupied == 0


class TestTriangleScene:
    def test_snapshot_contains_only_occupied_slots(self):
        buffer = VertexBuffer()
        buffer.reserve(8)
        buffer.write_key_triangle(1, 1.0, 0.0, 0.0)
        buffer.write_key_triangle(5, 5.0, 0.0, 0.0)
        scene = TriangleScene.from_vertex_buffer(buffer)
        assert scene.num_triangles == 2
        assert list(scene.primitive_indices) == [1, 5]
        assert scene.buffer_capacity == 8

    def test_vertex_buffer_bytes_cover_full_capacity(self):
        buffer = VertexBuffer()
        buffer.reserve(8)
        buffer.write_key_triangle(0, 0.0, 0.0, 0.0)
        scene = TriangleScene.from_vertex_buffer(buffer)
        assert scene.vertex_buffer_bytes() == 8 * TRIANGLE_BYTES

    def test_scene_from_triangles(self):
        triangles = [make_key_triangle(float(x), 0.0, 0.0, primitive_index=x) for x in range(4)]
        scene = TriangleScene.from_triangles(triangles)
        assert scene.num_triangles == 4
        assert scene.buffer_capacity == 4

    def test_empty_scene(self):
        scene = TriangleScene.from_triangles([])
        assert scene.num_triangles == 0
        assert scene.scene_aabb().is_empty()

    def test_centroids_are_exact_grid_points(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 3.0, 7.0, 2.0)
        scene = TriangleScene.from_vertex_buffer(buffer)
        assert np.allclose(scene.centroids()[0], [3.0, 7.0, 2.0])

    def test_triangle_aabbs_cover_vertices(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 3.0, 7.0, 2.0)
        scene = TriangleScene.from_vertex_buffer(buffer)
        minima, maxima = scene.triangle_aabbs()
        assert np.all(minima[0] <= scene.vertices[0].min(axis=0) + 1e-6)
        assert np.all(maxima[0] >= scene.vertices[0].max(axis=0) - 1e-6)

    def test_scene_aabb_covers_all_triangles(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 0.0, 0.0, 0.0)
        buffer.write_key_triangle(1, 10.0, 5.0, 2.0)
        scene = TriangleScene.from_vertex_buffer(buffer)
        box = scene.scene_aabb()
        assert box.contains_point([0.0, 0.0, 0.0])
        assert box.contains_point([10.0, 5.0, 2.0])

    def test_flipped_flags_follow_buffer(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 0.0, 0.0, 0.0, flipped=True)
        buffer.write_key_triangle(1, 1.0, 0.0, 0.0, flipped=False)
        scene = TriangleScene.from_vertex_buffer(buffer)
        assert scene.flipped[0]
        assert not scene.flipped[1]

    def test_build_flags_are_recorded(self):
        buffer = VertexBuffer()
        buffer.write_key_triangle(0, 0.0, 0.0, 0.0)
        scene = TriangleScene.from_vertex_buffer(buffer, BuildFlags.ALLOW_UPDATE)
        assert scene.build_flags == BuildFlags.ALLOW_UPDATE
