"""Tests for BVH construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtx.bvh import BVH_NODE_BYTES, Bvh, BvhBuildConfig, build_bvh
from repro.rtx.scene import TriangleScene, VertexBuffer


def scene_from_grid_points(points):
    buffer = VertexBuffer()
    for slot, (x, y, z) in enumerate(points):
        buffer.write_key_triangle(slot, float(x), float(y), float(z))
    return TriangleScene.from_vertex_buffer(buffer)


class TestBvhBuildConfig:
    def test_rejects_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            BvhBuildConfig(max_leaf_size=0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            BvhBuildConfig(method="sah-nonsense")

    @pytest.mark.parametrize("method", ["median", "middle"])
    def test_accepts_known_methods(self, method):
        assert BvhBuildConfig(method=method).method == method


class TestBvhConstruction:
    def test_empty_scene_builds_empty_bvh(self):
        bvh = build_bvh(TriangleScene.from_triangles([]))
        assert bvh.num_nodes == 0
        assert bvh.num_primitives == 0
        assert bvh.depth() == 0
        bvh.validate()

    def test_single_triangle_is_one_leaf(self):
        bvh = build_bvh(scene_from_grid_points([(3, 1, 0)]))
        assert bvh.num_nodes == 1
        assert bvh.num_leaves == 1
        assert bvh.depth() == 1
        bvh.validate()

    def test_all_primitives_covered_exactly_once(self, rng):
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 50, size=(64, 2))]
        bvh = build_bvh(scene_from_grid_points(points))
        bvh.validate()
        covered = sorted(
            int(p)
            for node in range(bvh.num_nodes)
            if bvh.node_count[node] > 0
            for p in bvh.leaf_primitive_indices(node)
        )
        assert covered == list(range(64))

    def test_leaf_size_is_respected(self, rng):
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 1000, size=(128, 2))]
        for leaf_size in (1, 2, 4, 8):
            bvh = build_bvh(scene_from_grid_points(points), BvhBuildConfig(max_leaf_size=leaf_size))
            counts = bvh.node_count[bvh.node_count > 0]
            # Leaves may exceed the limit only when centroids coincide.
            assert counts.max() <= max(leaf_size, 1)

    def test_smaller_leaves_make_deeper_trees(self, rng):
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 1000, size=(256, 2))]
        scene = scene_from_grid_points(points)
        shallow = build_bvh(scene, BvhBuildConfig(max_leaf_size=16))
        deep = build_bvh(scene, BvhBuildConfig(max_leaf_size=2))
        assert deep.depth() > shallow.depth()

    def test_root_aabb_covers_scene(self, rng):
        points = [(int(x), int(y), int(z)) for x, y, z in rng.integers(0, 100, size=(50, 3))]
        scene = scene_from_grid_points(points)
        bvh = build_bvh(scene)
        root = bvh.root_aabb()
        scene_box = scene.scene_aabb()
        assert np.all(root.minimum <= scene_box.minimum + 1e-4)
        assert np.all(root.maximum >= scene_box.maximum - 1e-4)

    def test_duplicate_positions_do_not_loop_forever(self):
        # Coinciding centroids would defeat any split; the builder must stop.
        bvh = build_bvh(scene_from_grid_points([(5, 5, 5)] * 20))
        bvh.validate()
        assert bvh.num_primitives == 20

    def test_memory_footprint_scales_with_triangles(self, rng):
        small_points = [(int(x), 0, 0) for x in rng.choice(10000, size=32, replace=False)]
        large_points = [(int(x), 0, 0) for x in rng.choice(10000, size=512, replace=False)]
        small = build_bvh(scene_from_grid_points(small_points))
        large = build_bvh(scene_from_grid_points(large_points))
        assert large.memory_footprint_bytes() > small.memory_footprint_bytes()
        assert small.memory_footprint_bytes() >= small.num_nodes * BVH_NODE_BYTES

    def test_middle_method_builds_valid_tree(self, rng):
        points = [(int(x), int(y), 0) for x, y in rng.integers(0, 500, size=(100, 2))]
        bvh = build_bvh(scene_from_grid_points(points), BvhBuildConfig(method="middle"))
        bvh.validate()

    def test_node_accessor_roundtrip(self):
        bvh = build_bvh(scene_from_grid_points([(1, 0, 0), (5, 0, 0), (9, 0, 0)]), BvhBuildConfig(max_leaf_size=1))
        root = bvh.node(0)
        assert not root.is_leaf
        assert root.left >= 0 and root.right >= 0

    def test_scaling_y_changes_split_structure(self):
        """The Section V-A effect: scaling y makes the builder separate rows first."""
        rng = np.random.default_rng(3)
        points = [(int(x), int(y), 0) for x, y in zip(rng.integers(0, 1 << 20, size=256), rng.integers(0, 8, size=256))]
        unscaled = build_bvh(scene_from_grid_points(points), BvhBuildConfig(max_leaf_size=4))
        scaled_points = [(x, y * (1 << 22), 0) for x, y, _ in points]
        scaled = build_bvh(scene_from_grid_points(scaled_points), BvhBuildConfig(max_leaf_size=4))
        # In the scaled scene the root split must separate y groups: both
        # children of the root have disjoint y ranges.
        left, right = int(scaled.node_left[0]), int(scaled.node_right[0])
        assert (
            scaled.node_max[left][1] <= scaled.node_min[right][1]
            or scaled.node_max[right][1] <= scaled.node_min[left][1]
        )
        # The unscaled scene, by contrast, splits along x at the root.
        left_u, right_u = int(unscaled.node_left[0]), int(unscaled.node_right[0])
        overlap_y = min(unscaled.node_max[left_u][1], unscaled.node_max[right_u][1]) - max(
            unscaled.node_min[left_u][1], unscaled.node_min[right_u][1]
        )
        assert overlap_y > 0

    @settings(max_examples=25, deadline=None)
    @given(
        num=st.integers(min_value=1, max_value=120),
        leaf=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_every_bvh_is_structurally_valid(self, num, leaf, seed):
        rng = np.random.default_rng(seed)
        points = [
            (int(x), int(y), int(z))
            for x, y, z in zip(
                rng.integers(0, 1 << 16, size=num),
                rng.integers(0, 64, size=num),
                rng.integers(0, 4, size=num),
            )
        ]
        bvh = build_bvh(scene_from_grid_points(points), BvhBuildConfig(max_leaf_size=leaf))
        bvh.validate()
        assert bvh.num_primitives == num
